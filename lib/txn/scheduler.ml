(** A deterministic multi-transaction scheduler (§2.4).

    The lock manager never blocks a thread — it answers [Blocked] or
    [Deadlock] — so concurrency is driven from outside.  This scheduler
    runs a set of scripted transactions round-robin: each round, every
    live transaction attempts its next operation; a blocked operation is
    retried on later rounds (the FIFO wait queue guarantees eventual
    promotion), and a deadlock victim aborts and restarts its script from
    the beginning after a deterministic exponential backoff (staggered by
    runner index so symmetric conflicts cannot re-form indefinitely).

    The §2.4 trade-off this makes measurable: "it will be reasonable to
    lock large items, as locks will be held for only a short time ...
    Partition-level locking may lead to problems with certain types of
    transactions that are inherently long." *)

open Mmdb_storage

type op =
  | Op_insert of { rel : string; values : Value.t array }
  | Op_read of { rel : string; key : Value.t array }
  | Op_update of { rel : string; key : Value.t array; col : int; value : Value.t }
  | Op_delete of { rel : string; key : Value.t array }

type script = op list

type stats = {
  mutable committed : int;
  mutable failed : int;  (** commit-time failures (e.g. unique violations) *)
  mutable deadlock_restarts : int;
  mutable blocked_retries : int;
  mutable ops_executed : int;
  mutable rounds : int;
}

let fresh_stats () =
  {
    committed = 0;
    failed = 0;
    deadlock_restarts = 0;
    blocked_retries = 0;
    ops_executed = 0;
    rounds = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<h>committed=%d failed=%d deadlock-restarts=%d blocked-retries=%d ops=%d rounds=%d@]"
    s.committed s.failed s.deadlock_restarts s.blocked_retries s.ops_executed
    s.rounds

type runner = {
  index : int;
  script : script;
  mutable txn : Txn.txn;
  mutable remaining : op list;
  mutable done_ : bool;
  mutable restarts : int;
  mutable sleep_until : int;  (** round before which this runner sits out *)
}

(* Execute one operation; key-addressed updates and deletes look the tuple
   up through the relation's primary index first. *)
let attempt mgr txn op =
  match op with
  | Op_insert { rel; values } -> Txn.insert txn ~rel values
  | Op_read { rel; key } ->
      Result.map (fun _ -> ()) (Txn.read txn ~rel key)
  | Op_update { rel; key; col; value } -> (
      match Txn.relation mgr rel with
      | None -> Error (Txn.Failed (Printf.sprintf "unknown relation %s" rel))
      | Some rel_t -> (
          match Relation.lookup_one rel_t key with
          | None -> Ok () (* vanished: treat as a no-op *)
          | Some tuple -> Txn.update txn ~rel tuple ~col value))
  | Op_delete { rel; key } -> (
      match Txn.relation mgr rel with
      | None -> Error (Txn.Failed (Printf.sprintf "unknown relation %s" rel))
      | Some rel_t -> (
          match Relation.lookup_one rel_t key with
          | None -> Ok ()
          | Some tuple -> Txn.delete txn ~rel tuple))

let run ?(max_rounds = 1_000_000) mgr scripts =
  let stats = fresh_stats () in
  let runners =
    List.mapi
      (fun index script ->
        {
          index;
          script;
          txn = Txn.begin_txn mgr;
          remaining = script;
          done_ = false;
          restarts = 0;
          sleep_until = 0;
        })
      scripts
  in
  let unfinished () = List.exists (fun r -> not r.done_) runners in
  let step ~round r =
    if (not r.done_) && round >= r.sleep_until then begin
      match r.remaining with
      | [] -> (
          match Txn.commit r.txn with
          | Ok () ->
              stats.committed <- stats.committed + 1;
              r.done_ <- true
          | Error _ ->
              stats.failed <- stats.failed + 1;
              r.done_ <- true)
      | op :: rest -> (
          match attempt mgr r.txn op with
          | Ok () ->
              stats.ops_executed <- stats.ops_executed + 1;
              r.remaining <- rest
          | Error Txn.Would_block ->
              stats.blocked_retries <- stats.blocked_retries + 1
          | Error Txn.Deadlock_victim ->
              Txn.abort r.txn;
              stats.deadlock_restarts <- stats.deadlock_restarts + 1;
              r.restarts <- r.restarts + 1;
              (* exponential backoff, staggered by index, capped *)
              r.sleep_until <-
                round + min 256 (1 lsl min 8 r.restarts) + r.index;
              r.txn <- Txn.begin_txn mgr;
              r.remaining <- r.script
          | Error (Txn.Failed msg) ->
              (* declaration-time failure: abort this transaction *)
              ignore msg;
              Txn.abort r.txn;
              stats.failed <- stats.failed + 1;
              r.done_ <- true)
    end
  in
  (* Starvation guard (priority aging): when some transaction has been a
     deadlock victim many times, grant the most-victimized unfinished
     runner solo execution until it commits.  Entering solo mode aborts
     every other live transaction (releasing their locks) and resets them
     to restart afterwards — long transactions under fine-grained locking
     can otherwise restart forever, which is exactly the §2.4 concern
     about "transactions that are inherently long". *)
  let starvation_threshold = 8 in
  let solo : runner option ref = ref None in
  let pick_solo () =
    let worst =
      List.fold_left
        (fun acc r ->
          if r.done_ then acc
          else
            match acc with
            | Some best when best.restarts >= r.restarts -> acc
            | _ -> Some r)
        None runners
    in
    match worst with
    | Some r when r.restarts >= starvation_threshold ->
        (* clear the field for the starved runner *)
        List.iter
          (fun other ->
            if other != r && not other.done_ then begin
              Txn.abort other.txn;
              other.txn <- Txn.begin_txn mgr;
              other.remaining <- other.script;
              other.restarts <- 0
            end)
          runners;
        r.restarts <- 0;
        solo := Some r;
        Some r
    | _ -> None
  in
  let rec rounds n =
    if n >= max_rounds then Error stats
    else if unfinished () then begin
      stats.rounds <- stats.rounds + 1;
      (match !solo with
      | Some r when not r.done_ ->
          r.sleep_until <- 0;
          step ~round:n r
      | _ -> (
          solo := None;
          match pick_solo () with
          | Some r ->
              r.sleep_until <- 0;
              step ~round:n r
          | None -> List.iter (step ~round:n) runners));
      rounds (n + 1)
    end
    else Ok stats
  in
  rounds 0
