(** Transactions over the MM-DBMS: deferred updates, redo-only logging,
    partition-level locking (§2.4).

    Writes performed inside a transaction are buffered as intention records
    (and logged to the stable buffer) and applied to the memory-resident
    database atomically at commit — which is why "if the transaction aborts,
    then the log entry is removed and no undo is needed".  Reads see
    committed state.

    Locking is at partition granularity.  Reads take shared locks on the
    partitions of the tuples they return; deletes and updates take exclusive
    locks on the target tuple's partition at declaration time; inserts take
    the relation's growth lock (partition id -1), since the target partition
    is unknown until placement.  Lock requests never block the calling
    thread: they surface [Would_block] / [Deadlock_victim] to the scheduler
    driving the simulation. *)

open Mmdb_storage

type failure = Would_block | Deadlock_victim | Failed of string

let pp_failure ppf = function
  | Would_block -> Fmt.string ppf "would block"
  | Deadlock_victim -> Fmt.string ppf "deadlock victim"
  | Failed msg -> Fmt.pf ppf "failed: %s" msg

type wop =
  | W_insert of { rel : string; values : Value.t array }
  | W_delete of { rel : string; tuple : Tuple.t }
  | W_update of { rel : string; tuple : Tuple.t; col : int; value : Value.t }

type status = Active | Committed | Aborted

type manager = {
  rels : (string, Relation.t) Hashtbl.t;
  locks : Lock_manager.t;
  buffer : Log_buffer.t;
  store : Disk_store.t;
  device : Log_device.t;
  fault : Fault.t;
  mutable next_txn : int;
  statuses : (int, status) Hashtbl.t;
  intents : (int, wop list) Hashtbl.t;  (** newest first *)
}

type txn = { id : int; mgr : manager }

let create_manager ?(fault = Fault.none) () =
  let store = Disk_store.create ~fault () in
  {
    rels = Hashtbl.create 8;
    locks = Lock_manager.create ();
    buffer = Log_buffer.create ();
    store;
    device = Log_device.create ~fault ~store ();
    fault;
    next_txn = 1;
    statuses = Hashtbl.create 16;
    intents = Hashtbl.create 16;
  }

let add_relation mgr rel_t =
  let n = Relation.name rel_t in
  if Hashtbl.mem mgr.rels n then
    Error (Printf.sprintf "relation %s already registered" n)
  else begin
    Hashtbl.replace mgr.rels n rel_t;
    (* Initial checkpoint so the disk copy knows the relation exists. *)
    Disk_store.checkpoint mgr.store rel_t;
    Ok ()
  end

let relation mgr n = Hashtbl.find_opt mgr.rels n

let find_rel mgr n =
  match Hashtbl.find_opt mgr.rels n with
  | Some r -> Ok r
  | None -> Error (Failed (Printf.sprintf "unknown relation %s" n))

let store mgr = mgr.store
let device mgr = mgr.device
let lock_manager mgr = mgr.locks
let fault mgr = mgr.fault

let begin_txn mgr =
  let id = mgr.next_txn in
  mgr.next_txn <- id + 1;
  Hashtbl.replace mgr.statuses id Active;
  Hashtbl.replace mgr.intents id [];
  { id; mgr }

let status t = Option.value ~default:Aborted (Hashtbl.find_opt t.mgr.statuses t.id)

let check_active t =
  match status t with
  | Active -> Ok ()
  | Committed -> Error (Failed "transaction already committed")
  | Aborted -> Error (Failed "transaction already aborted")

let lock t res mode =
  match Lock_manager.acquire t.mgr.locks ~txn:t.id res mode with
  | Lock_manager.Granted -> Ok ()
  | Lock_manager.Blocked -> Error Would_block
  | Lock_manager.Deadlock -> Error Deadlock_victim

let growth_lock rel = { Lock_manager.rel; pid = Lock_manager.growth_pid }

let partition_lock rel tuple =
  { Lock_manager.rel; pid = (Tuple.resolve tuple).Value.pid }

let add_intent t op =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.mgr.intents t.id) in
  Hashtbl.replace t.mgr.intents t.id (op :: cur)

let ( let* ) = Result.bind

let insert t ~rel values =
  let* () = check_active t in
  let* _ = find_rel t.mgr rel in
  let* () = lock t (growth_lock rel) Lock_manager.Exclusive in
  add_intent t (W_insert { rel; values = Array.copy values });
  Ok ()

let delete t ~rel tuple =
  let* () = check_active t in
  let* _ = find_rel t.mgr rel in
  let* () = lock t (partition_lock rel tuple) Lock_manager.Exclusive in
  add_intent t (W_delete { rel; tuple });
  Ok ()

let update t ~rel tuple ~col value =
  let* () = check_active t in
  let* _ = find_rel t.mgr rel in
  let* () = lock t (partition_lock rel tuple) Lock_manager.Exclusive in
  (* The update may move the tuple to a new partition at apply time; the
     growth lock covers that possibility. *)
  let* () = lock t (growth_lock rel) Lock_manager.Exclusive in
  add_intent t (W_update { rel; tuple; col; value });
  Ok ()

let read t ~rel ?index key =
  let* () = check_active t in
  let* r = find_rel t.mgr rel in
  let tuples = Relation.lookup ?index r key in
  (* Shared-lock every partition the result touches. *)
  let rec lock_parts = function
    | [] -> Ok tuples
    | tu :: rest ->
        let* () = lock t (partition_lock rel tu) Lock_manager.Shared in
        lock_parts rest
  in
  lock_parts tuples

let read_range t ~rel ?index ~lo ~hi () =
  let* () = check_active t in
  let* r = find_rel t.mgr rel in
  let acc = ref [] in
  Relation.lookup_range ?index r ~lo ~hi (fun tu -> acc := tu :: !acc);
  let tuples = List.rev !acc in
  let rec lock_parts = function
    | [] -> Ok tuples
    | tu :: rest ->
        let* () = lock t (partition_lock rel tu) Lock_manager.Shared in
        lock_parts rest
  in
  lock_parts tuples

let abort t =
  Log_buffer.abort t.mgr.buffer ~txn:t.id;
  Hashtbl.replace t.mgr.intents t.id [];
  Hashtbl.replace t.mgr.statuses t.id Aborted;
  Lock_manager.release_all t.mgr.locks ~txn:t.id

(* Inverse operations for unwinding a partially applied commit. *)
type applied =
  | A_inserted of string * Tuple.t
  | A_deleted of string * Value.t array
  | A_updated of string * Tuple.t * int * Value.t  (** old value *)

let undo mgr = function
  | A_inserted (rel, tuple) -> (
      match relation mgr rel with
      | Some r -> ignore (Relation.delete_tuple r tuple)
      | None -> ())
  | A_deleted (rel, values) -> (
      match relation mgr rel with
      | Some r -> ignore (Relation.insert r values)
      | None -> ())
  | A_updated (rel, tuple, col, old_v) -> (
      match relation mgr rel with
      | Some r -> ignore (Relation.update_field r tuple col old_v)
      | None -> ())

let commit t =
  match check_active t with
  | Error f -> Error (Fmt.str "%a" pp_failure f)
  | Ok () -> (
      let ops =
        List.rev (Option.value ~default:[] (Hashtbl.find_opt t.mgr.intents t.id))
      in
      (* Apply each intent; log its change (with the partition it landed in)
         into the stable buffer.  On any failure, unwind and abort. *)
      let rec apply applied = function
        | [] -> Ok ()
        | op :: rest -> (
            match op with
            | W_insert { rel; values } -> (
                match find_rel t.mgr rel with
                | Error f -> Error (Fmt.str "%a" pp_failure f, applied)
                | Ok r -> (
                    match Relation.insert r values with
                    | Error msg -> Error (msg, applied)
                    | Ok tuple ->
                        Log_buffer.append t.mgr.buffer ~txn:t.id ~rel
                          ~pid:(Tuple.resolve tuple).Value.pid
                          (Log_record.Insert (Log_record.serialize_tuple tuple));
                        apply (A_inserted (rel, tuple) :: applied) rest))
            | W_delete { rel; tuple } -> (
                match find_rel t.mgr rel with
                | Error f -> Error (Fmt.str "%a" pp_failure f, applied)
                | Ok r ->
                    let values = Tuple.fields tuple in
                    let pid = (Tuple.resolve tuple).Value.pid in
                    if Relation.delete_tuple r tuple then begin
                      Log_buffer.append t.mgr.buffer ~txn:t.id ~rel ~pid
                        (Log_record.Delete { tid = Tuple.id tuple });
                      apply (A_deleted (rel, values) :: applied) rest
                    end
                    else Error ("tuple already gone", applied))
            | W_update { rel; tuple; col; value } -> (
                match find_rel t.mgr rel with
                | Error f -> Error (Fmt.str "%a" pp_failure f, applied)
                | Ok r -> (
                    let old_v = Tuple.get_raw (Tuple.resolve tuple) col in
                    match Relation.update_field r tuple col value with
                    | Error msg -> Error (msg, applied)
                    | Ok () ->
                        Log_buffer.append t.mgr.buffer ~txn:t.id ~rel
                          ~pid:(Tuple.resolve tuple).Value.pid
                          (Log_record.Update
                             {
                               tid = Tuple.id tuple;
                               col;
                               svalue = Log_record.serialize_value value;
                             });
                        apply (A_updated (rel, tuple, col, old_v) :: applied)
                          rest)))
      in
      match apply [] ops with
      | Error (msg, applied) ->
          (* Discard the MVCC intents first — the versions pushed by the
             partial apply were never published, so popping them leaves no
             trace — then physically unwind with the hooks suppressed (the
             unwind must maintain view membership but record no history). *)
          Mmdb_storage.Version_store.rollback_pending ();
          Mmdb_storage.Version_store.suppressed (fun () ->
              List.iter (undo t.mgr) applied);
          abort t;
          Error msg
      | Ok () ->
          (* A crash here loses the transaction entirely: its intentions
             never reached the stable buffer. *)
          Fault.hit t.mgr.fault ~point:"commit.before-log";
          ignore (Log_buffer.commit t.mgr.buffer ~txn:t.id);
          (* Commit is complete once the stable buffer holds the records;
             the log device picks them up asynchronously.  We absorb them
             eagerly here so crash simulations see them accumulated. *)
          Log_device.absorb t.mgr.device t.mgr.buffer;
          (* A crash here loses only the acknowledgement: the transaction
             is durable and recovery must replay it. *)
          Fault.hit t.mgr.fault ~point:"commit.after-log";
          Hashtbl.replace t.mgr.statuses t.id Committed;
          Hashtbl.replace t.mgr.intents t.id [];
          Lock_manager.release_all t.mgr.locks ~txn:t.id;
          Ok ())

let checkpoint_all mgr =
  (* Propagate everything, rewrite partition images wholesale, then drop
     the retained log prefix the fresh images now cover. *)
  ignore (Log_device.propagate mgr.device);
  Hashtbl.iter (fun _ rel_t -> Disk_store.checkpoint mgr.store rel_t) mgr.rels;
  ignore (Log_device.truncate mgr.device)
