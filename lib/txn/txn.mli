(** Transactions over the MM-DBMS: deferred updates, redo-only logging,
    partition-level locking (§2.4).

    Writes inside a transaction are buffered as intention records and
    applied to the memory-resident database atomically at commit — which
    is why an abort only has to discard log entries.  Reads see committed
    state.  Lock requests never block the calling thread; they surface
    {!Would_block} / {!Deadlock_victim} to whatever scheduler drives the
    simulation.

    A manager can carry a {!Fault.t} injector; the commit path exposes the
    ["commit.before-log"] and ["commit.after-log"] crash points, and the
    injector is shared with the manager's disk store and log device. *)

open Mmdb_storage

type failure = Would_block | Deadlock_victim | Failed of string

val pp_failure : Format.formatter -> failure -> unit

type manager
type txn

type status = Active | Committed | Aborted

val create_manager : ?fault:Fault.t -> unit -> manager

val add_relation : manager -> Relation.t -> (unit, string) result
(** Register a relation and write its initial checkpoint to the disk
    store; [Error] on duplicate names. *)

val relation : manager -> string -> Relation.t option
val store : manager -> Disk_store.t
val device : manager -> Log_device.t
val lock_manager : manager -> Lock_manager.t
val fault : manager -> Fault.t

val begin_txn : manager -> txn
val status : txn -> status

val insert : txn -> rel:string -> Value.t array -> (unit, failure) result
(** Declare an insert (applied at commit).  Takes the relation's growth
    lock exclusively. *)

val delete : txn -> rel:string -> Tuple.t -> (unit, failure) result
(** Declare a delete; exclusive lock on the tuple's partition. *)

val update :
  txn -> rel:string -> Tuple.t -> col:int -> Value.t -> (unit, failure) result
(** Declare a field update; exclusive locks on the tuple's partition and
    the growth lock (the tuple may move partitions at apply time). *)

val read : txn -> rel:string -> ?index:string -> Value.t array
  -> (Tuple.t list, failure) result
(** Committed-state key lookup; shared locks on the partitions of every
    returned tuple. *)

val read_range :
  txn ->
  rel:string ->
  ?index:string ->
  lo:Value.t array ->
  hi:Value.t array ->
  unit ->
  (Tuple.t list, failure) result

val commit : txn -> (unit, string) result
(** Apply the intention list in order, logging each change to the stable
    buffer; hand the committed records to the log device; release locks.
    Any apply failure (e.g. a uniqueness violation) unwinds every applied
    operation and aborts the whole transaction. *)

val abort : txn -> unit
(** Discard intentions and log entries, release locks — no undo needed. *)

val checkpoint_all : manager -> unit
(** Propagate the whole accumulation log, rewrite all partition images,
    then truncate the retained log they now cover. *)
