(* Build provenance: the checkout's short git revision, so STATUS dumps,
   STATS payloads, and bench JSONL records identify the build they came
   from.  "unknown" outside a git checkout (e.g. a release tarball). *)

let git_rev_lazy =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       match (Unix.close_process_in ic, line) with
       | Unix.WEXITED 0, rev when rev <> "" -> rev
       | _ -> "unknown"
     with _ -> "unknown")

let git_rev () = Lazy.force git_rev_lazy
