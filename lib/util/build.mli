(** Build provenance. *)

val git_rev : unit -> string
(** The checkout's short git revision, determined once (lazily) by shelling
    out to [git rev-parse]; ["unknown"] outside a git checkout. *)
