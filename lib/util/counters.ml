type snapshot = {
  comparisons : int;
  data_moves : int;
  hash_calls : int;
  node_allocs : int;
  ptr_derefs : int;
}

let zero =
  { comparisons = 0; data_moves = 0; hash_calls = 0; node_allocs = 0;
    ptr_derefs = 0 }

let add a b =
  {
    comparisons = a.comparisons + b.comparisons;
    data_moves = a.data_moves + b.data_moves;
    hash_calls = a.hash_calls + b.hash_calls;
    node_allocs = a.node_allocs + b.node_allocs;
    ptr_derefs = a.ptr_derefs + b.ptr_derefs;
  }

let diff a b =
  {
    comparisons = a.comparisons - b.comparisons;
    data_moves = a.data_moves - b.data_moves;
    hash_calls = a.hash_calls - b.hash_calls;
    node_allocs = a.node_allocs - b.node_allocs;
    ptr_derefs = a.ptr_derefs - b.ptr_derefs;
  }

let enabled = ref true

(* Each domain bumps a private cell (no sharing, no contention on the
   operator hot paths); [snapshot] merges every domain's cell.  Cells are
   registered on first use from a domain; the registry is only touched at
   registration/reset/snapshot time and is mutex-guarded.

   Merge visibility: callers take snapshots from the coordinating domain
   after awaiting the futures of the work they want counted, and the
   future's mutex establishes the necessary happens-before edge for the
   workers' plain-field bumps. *)
type cell = {
  mutable c_comparisons : int;
  mutable c_data_moves : int;
  mutable c_hash_calls : int;
  mutable c_node_allocs : int;
  mutable c_ptr_derefs : int;
}

let registry_m = Mutex.create ()
let registry : cell list ref = ref []

let cell_key =
  Domain.DLS.new_key (fun () ->
      let c =
        { c_comparisons = 0; c_data_moves = 0; c_hash_calls = 0;
          c_node_allocs = 0; c_ptr_derefs = 0 }
      in
      Mutex.lock registry_m;
      registry := c :: !registry;
      Mutex.unlock registry_m;
      c)

let cell () = Domain.DLS.get cell_key

let zero_cell c =
  c.c_comparisons <- 0;
  c.c_data_moves <- 0;
  c.c_hash_calls <- 0;
  c.c_node_allocs <- 0;
  c.c_ptr_derefs <- 0

let reset () =
  Mutex.lock registry_m;
  List.iter zero_cell !registry;
  Mutex.unlock registry_m

let snapshot_of c =
  {
    comparisons = c.c_comparisons;
    data_moves = c.c_data_moves;
    hash_calls = c.c_hash_calls;
    node_allocs = c.c_node_allocs;
    ptr_derefs = c.c_ptr_derefs;
  }

let snapshot () =
  Mutex.lock registry_m;
  let s = List.fold_left (fun acc c -> add acc (snapshot_of c)) zero !registry in
  Mutex.unlock registry_m;
  s

let local_snapshot () = snapshot_of (cell ())

let absorb s =
  let c = cell () in
  c.c_comparisons <- c.c_comparisons + s.comparisons;
  c.c_data_moves <- c.c_data_moves + s.data_moves;
  c.c_hash_calls <- c.c_hash_calls + s.hash_calls;
  c.c_node_allocs <- c.c_node_allocs + s.node_allocs;
  c.c_ptr_derefs <- c.c_ptr_derefs + s.ptr_derefs

let bump_comparisons ?(n = 1) () =
  if !enabled then begin
    let c = cell () in
    c.c_comparisons <- c.c_comparisons + n
  end

let bump_data_moves ?(n = 1) () =
  if !enabled then begin
    let c = cell () in
    c.c_data_moves <- c.c_data_moves + n
  end

let bump_hash_calls ?(n = 1) () =
  if !enabled then begin
    let c = cell () in
    c.c_hash_calls <- c.c_hash_calls + n
  end

let bump_node_allocs ?(n = 1) () =
  if !enabled then begin
    let c = cell () in
    c.c_node_allocs <- c.c_node_allocs + n
  end

let bump_ptr_derefs ?(n = 1) () =
  if !enabled then begin
    let c = cell () in
    c.c_ptr_derefs <- c.c_ptr_derefs + n
  end

let counting_cmp cmp a b =
  bump_comparisons ();
  cmp a b

let with_counters f =
  let before = snapshot () in
  let result = f () in
  let after = snapshot () in
  (result, diff after before)

let pp ppf s =
  Format.fprintf ppf
    "@[<h>cmp=%d moves=%d hash=%d allocs=%d derefs=%d@]" s.comparisons
    s.data_moves s.hash_calls s.node_allocs s.ptr_derefs
