(** Operation counters for algorithm validation.

    The paper (§3.1) validated its timing results by "recording and examining
    the number of comparisons, the amount of data movement, the number of
    hash function calls, and other miscellaneous operations to ensure that
    the algorithms were doing what they were supposed to".  This module is
    that instrumentation: every index and query-processing algorithm bumps
    these counters, and the test suite asserts the expected operation counts
    (which are hardware-independent, unlike wall-clock times).

    Counting is enabled by default; benchmarks disable it so that, as in the
    paper, "these counters were compiled out of the code when the final
    performance tests were run" — here they are branch-predicted-away rather
    than compiled away.

    Counters are {e domain-local}: each domain bumps a private cell with no
    synchronization, and [snapshot]/[reset] merge/clear every domain's cell
    under a registry mutex.  Parallel operators therefore count exactly the
    same operations as their sequential counterparts; take snapshots from
    the coordinating domain after the parallel work has been awaited. *)

type snapshot = {
  comparisons : int;  (** key/value comparisons performed *)
  data_moves : int;   (** elements moved or copied within/between nodes *)
  hash_calls : int;   (** hash-function evaluations *)
  node_allocs : int;  (** index nodes / buckets allocated *)
  ptr_derefs : int;   (** tuple-pointer dereferences to reach attribute values *)
}
(** An immutable copy of all counters. *)

val enabled : bool ref
(** Master switch.  When [false], the bump functions are no-ops. *)

val reset : unit -> unit
(** Zero every counter in every domain. *)

val snapshot : unit -> snapshot
(** Current counter values, merged across all domains. *)

val local_snapshot : unit -> snapshot
(** The calling domain's counters only. *)

val absorb : snapshot -> unit
(** Add a snapshot into the calling domain's counters — the explicit merge
    half of domain-local counting, for carrying counts across domains by
    hand. *)

val zero : snapshot
(** The all-zero snapshot. *)

val add : snapshot -> snapshot -> snapshot
(** Componentwise sum. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the componentwise difference. *)

val bump_comparisons : ?n:int -> unit -> unit
val bump_data_moves : ?n:int -> unit -> unit
val bump_hash_calls : ?n:int -> unit -> unit
val bump_node_allocs : ?n:int -> unit -> unit
val bump_ptr_derefs : ?n:int -> unit -> unit

val counting_cmp : ('a -> 'a -> int) -> 'a -> 'a -> int
(** [counting_cmp cmp] behaves as [cmp] but bumps [comparisons] on each
    call. *)

val with_counters : (unit -> 'a) -> 'a * snapshot
(** [with_counters f] runs [f] and returns its result together with the
    counters accumulated during the call (other concurrent bumps included;
    the MM-DBMS is single-threaded per the paper's experiments). *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable rendering. *)
