(* A fixed pool of worker domains for intra-query parallelism.

   The paper's cost model is CPU-bound once data is memory-resident, so
   the only way to go faster on modern hardware is to use more cores.
   This pool is the substrate: operators split their input into chunks,
   each chunk runs on a worker domain, and the results are concatenated.

   Design rules:

   - A pool of [size] N runs at most N tasks concurrently; [size 1]
     spawns NO domains and runs every task inline at submission, which
     is the sequential fallback (bit-identical to the pre-parallel
     code paths — MMDB_DOMAINS=1 forces it globally).
   - Nesting is forbidden by construction: a task running on a worker
     that itself calls [parallel_map]/[submit] degrades to inline
     sequential execution ([in_worker] is a domain-local flag).  This
     makes it impossible for the server's reader fan-out (which runs
     query jobs on pool workers) to deadlock against operator-level
     parallelism competing for the same workers.
   - Tasks must not touch mutable state shared with other concurrent
     tasks; the operators uphold this by writing into per-task local
     temporary lists that the caller concatenates. *)

type 'a outcome = Value of 'a | Raised of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a outcome option;
}

type t = {
  m : Mutex.t;
  c : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

(* Domain-local marker: true while executing on a pool worker. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let size t = t.size

let clamp lo hi v = max lo (min hi v)

(* MMDB_DOMAINS overrides the hardware-derived default; 1 forces the
   sequential fallback everywhere. *)
let default_size () =
  match Sys.getenv_opt "MMDB_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> clamp 1 64 n
      | None -> clamp 1 16 (Domain.recommended_domain_count ()))
  | None -> clamp 1 16 (Domain.recommended_domain_count ())

let worker_loop t =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.tasks && not t.stopped do
      Condition.wait t.c t.m
    done;
    if Queue.is_empty t.tasks then Mutex.unlock t.m (* stopped and drained *)
    else begin
      let task = Queue.pop t.tasks in
      Mutex.unlock t.m;
      task ();
      loop ()
    end
  in
  loop ()

let create ?size () =
  let size = match size with Some s -> max 1 s | None -> default_size () in
  let t =
    {
      m = Mutex.create ();
      c = Condition.create ();
      tasks = Queue.create ();
      stopped = false;
      workers = [||];
      size;
    }
  in
  if size > 1 then
    t.workers <- Array.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let resolve fut outcome =
  Mutex.lock fut.fm;
  fut.state <- Some outcome;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let submit t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = None } in
  let task () = resolve fut (try Value (f ()) with e -> Raised e) in
  (* No workers (size 1), worker context (no nesting), or a stopped pool:
     run inline so a future always resolves. *)
  let inline () =
    task ();
    fut
  in
  if Array.length t.workers = 0 || in_worker () then inline ()
  else begin
    Mutex.lock t.m;
    if t.stopped then begin
      Mutex.unlock t.m;
      inline ()
    end
    else begin
      Queue.push task t.tasks;
      Condition.signal t.c;
      Mutex.unlock t.m;
      fut
    end
  end

let await fut =
  Mutex.lock fut.fm;
  while fut.state = None do
    Condition.wait fut.fc fut.fm
  done;
  let s = fut.state in
  Mutex.unlock fut.fm;
  match s with
  | Some (Value v) -> v
  | Some (Raised e) -> raise e
  | None -> assert false

(* Split [0, n) into at most [pieces] contiguous, non-empty ranges. *)
let chunks ~n ~pieces =
  if n <= 0 then [||]
  else begin
    let pieces = clamp 1 n pieces in
    let per = n / pieces and extra = n mod pieces in
    Array.init pieces (fun i ->
        let lo = (i * per) + min i extra in
        let hi = lo + per + if i < extra then 1 else 0 in
        (lo, hi))
  end

(* Chunked parallel map: split [arr] into about [4 * size] ranges for
   load balance, map each range on a worker, await all, then stitch the
   results back together in order.  Every chunk completes before the
   first failure (if any) is re-raised, so in-place work never races
   with the caller's unwinding. *)
let parallel_map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.size <= 1 || n = 1 || in_worker () then Array.map f arr
  else begin
    let ranges = chunks ~n ~pieces:(4 * t.size) in
    let futures =
      Array.map
        (fun (lo, hi) ->
          submit t (fun () -> Array.init (hi - lo) (fun k -> f arr.(lo + k))))
        ranges
    in
    let outcomes =
      Array.map
        (fun fut -> try Value (await fut) with e -> Raised e)
        futures
    in
    let parts =
      Array.map
        (function Value v -> v | Raised e -> raise e)
        outcomes
    in
    Array.concat (Array.to_list parts)
  end

let parallel_iter t f arr = ignore (parallel_map t (fun x -> f x; ()) arr)

let stop t =
  Mutex.lock t.m;
  t.stopped <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers

(* The process-wide shared pool, sized by MMDB_DOMAINS (or the hardware
   default).  Created lazily on first use; never stopped — its idle
   workers block on a condition variable and cost nothing. *)
let global_pool = lazy (create ~size:(default_size ()) ())
let global () = Lazy.force global_pool
