(** A fixed pool of worker domains for parallel query execution.

    Once data is memory-resident, query cost is CPU cost (the paper's
    central premise) — so the multi-core continuation of the paper's
    operator study is to split operator input into chunks and run the
    chunks on a fixed set of OCaml 5 domains.

    Concurrency contract:
    - a pool of size 1 spawns no domains and runs tasks inline at
      submission: the {e sequential fallback}, bit-identical to the
      single-core code paths (set [MMDB_DOMAINS=1] to force it);
    - nested parallelism degrades to sequential: submitting from inside
      a worker runs the task inline, so the server's reader fan-out can
      never deadlock against operator-level parallelism;
    - tasks must not share mutable state with concurrently running
      tasks (operators write into per-task locals and concatenate). *)

type t

type 'a future

val default_size : unit -> int
(** Pool parallelism from the [MMDB_DOMAINS] environment variable when
    set (clamped to [1, 64]), else [Domain.recommended_domain_count]
    (clamped to [1, 16]).  [MMDB_DOMAINS=1] forces the sequential
    fallback everywhere. *)

val create : ?size:int -> unit -> t
(** [create ?size ()] spawns [size] worker domains ([default_size]
    when omitted).  [size <= 1] spawns none. *)

val size : t -> int
(** Configured parallelism (1 = sequential fallback). *)

val in_worker : unit -> bool
(** True while executing on a pool worker domain (any pool). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Queue a task.  Runs inline (before returning) when the pool is
    sequential, stopped, or the caller is itself a pool worker. *)

val await : 'a future -> 'a
(** Block until the task finishes; re-raises the task's exception. *)

val chunks : n:int -> pieces:int -> (int * int) array
(** Split [\[0, n)] into at most [pieces] contiguous non-empty
    [(lo, hi)] ranges ([hi] exclusive) of near-equal length. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Chunked map: same elements, same order as [Array.map].  Falls back
    to [Array.map] when the pool is sequential, the input is tiny, or
    the caller is a pool worker.  All chunks complete before any chunk's
    exception is re-raised. *)

val parallel_iter : t -> ('a -> unit) -> 'a array -> unit

val stop : t -> unit
(** Drain queued tasks, then stop and join the workers. *)

val global : unit -> t
(** The process-wide shared pool (lazily created at [default_size]).
    Used by the query operators unless an explicit pool is passed. *)
