(* Log-bucketed latency histogram.

   Fixed geometric bucket layout: bucket [i] covers
   (lo * r^i, lo * r^(i+1)] with lo = 1µs and r = 10^(1/10) (ten buckets
   per decade), spanning 1µs .. 100s plus an underflow and an overflow
   bucket — 103 counters in total.  Because the layout is identical for
   every histogram, two histograms merge by adding counts, which is what
   lets per-statement-kind histograms roll up into a total (and, later,
   per-shard histograms into a fleet view).  Unlike a sampling reservoir
   the histogram never forgets: percentiles cover the server's whole
   life, with relative error bounded by the bucket ratio (~26%).

   Not synchronized — {!Mmdb_net.Metrics} already serializes access under
   its own mutex. *)

let lo = 1e-6
let per_decade = 10
let decades = 8
let n_buckets = (per_decade * decades) + 2 (* underflow + overflow *)

let ratio = 10.0 ** (1.0 /. float_of_int per_decade)

type t = {
  counts : int array;
  mutable n : int;  (* total samples *)
  mutable sum : float;  (* seconds *)
  mutable max_s : float;  (* exact, for the "max" column *)
}

(* [max_s] starts at 0, not neg_infinity: consumers that render the raw
   field (JSON prints non-finite floats as null) must never see a
   non-finite value from an empty histogram.  Emptiness is signalled by
   [n = 0] ({!max_sample} and {!percentile} return [None]), so 0 is
   never mistaken for a sample. *)
let create () = { counts = Array.make n_buckets 0; n = 0; sum = 0.0; max_s = 0.0 }

(* Upper bound of bucket [i] (seconds); the overflow bucket has none. *)
let upper_bound i = lo *. (ratio ** float_of_int i)

(* Bucket [0] covers (0, lo]; bucket [i] covers
   (upper_bound (i-1), upper_bound i]; the last bucket is overflow. *)
let bucket_of x =
  if x <= lo then 0
  else
    let i = int_of_float (Float.ceil ((log (x /. lo) /. log ratio) -. 1e-9)) in
    if i >= n_buckets then n_buckets - 1 else i

let add t x =
  t.counts.(bucket_of x) <- t.counts.(bucket_of x) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x > t.max_s then t.max_s <- x

let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then None else Some (t.sum /. float_of_int t.n)
let max_sample t = if t.n = 0 then None else Some t.max_s

let merge_into ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.n <- into.n + t.n;
  into.sum <- into.sum +. t.sum;
  if t.max_s > into.max_s then into.max_s <- t.max_s

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

(* Percentile by walking the cumulative counts; the answer is the upper
   bound of the bucket containing the p-th sample (clamped to the exact
   max so p100 is truthful). *)
let percentile t p =
  if t.n = 0 then None
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let rec walk i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank || i = n_buckets - 1 then i else walk (i + 1) seen
    in
    let b = walk 0 0 in
    let v = if b = n_buckets - 1 then t.max_s else upper_bound b in
    Some (Float.min v t.max_s)
  end

(* Non-empty buckets as (upper_bound_seconds, count); the overflow bucket
   reports the exact max as its bound. *)
let buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      let bound = if i = n_buckets - 1 then t.max_s else upper_bound i in
      out := (bound, t.counts.(i)) :: !out
  done;
  !out
