(** Log-bucketed latency histogram.

    Fixed geometric buckets: ten per decade from 1µs to 100s, plus
    underflow and overflow.  Because the layout is identical for every
    histogram, two histograms merge by adding counts — per-statement-kind
    histograms roll up into a total.  Unlike a sampling reservoir the
    histogram never forgets: percentiles cover every sample ever added,
    with relative error bounded by the bucket ratio (about 26%).

    Not synchronized; callers serialize access (Metrics holds a mutex). *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample (seconds). *)

val count : t -> int
val sum : t -> float
val mean : t -> float option
val max_sample : t -> float option
(** Exact maximum ever added; [None] when empty. *)

val percentile : t -> float -> float option
(** [percentile t p] for [p] in [0..100]: the upper bound of the bucket
    holding the p-th sample, clamped to the exact maximum (so p100 is
    truthful).  [None] when empty. *)

val merge_into : into:t -> t -> unit
(** Add every bucket, count, sum and max of the second histogram into
    [into]. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' samples. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound_seconds, count)], ascending; the
    overflow bucket reports the exact max as its bound. *)
