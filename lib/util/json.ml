(* Minimal JSON: enough for the slow-query log, the STATS wire payload,
   and the bench JSONL records to be produced and parsed back without an
   external dependency.  Covers the full JSON grammar except that
   integers without a fraction/exponent decode as [Int] (so counters
   survive a round trip exactly) and surrogate-pair escapes are kept as
   raw \uXXXX sequences are decoded to UTF-8 only for the BMP. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- rendering --------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f (* keep a dot so it re-parses as a float *)
  else Printf.sprintf "%.12g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parsing ----------------------------------------------------------- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

(* Encode a BMP code point as UTF-8. *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> fail c "dangling escape"
        | Some ch ->
            c.pos <- c.pos + 1;
            (match ch with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.s then fail c "short \\u escape";
                let hex = String.sub c.s c.pos 4 in
                c.pos <- c.pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some cp -> add_utf8 b cp
                | None -> fail c "bad \\u escape")
            | _ -> fail c "unknown escape");
            go ())
    | Some ch ->
        Buffer.add_char b ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec span () =
    match peek c with
    | Some ch when is_num_char ch ->
        c.pos <- c.pos + 1;
        span ()
    | _ -> ()
  in
  span ();
  let text = String.sub c.s start (c.pos - start) in
  let fractional =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text
  in
  if not fractional then
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> fail c "bad number"
  else
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* --- accessors --------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
