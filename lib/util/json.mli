(** Minimal JSON, so the slow-query log, STATS payloads and bench records
    can be produced and parsed back without an external dependency.

    Full JSON grammar, with two pragmatic choices: numbers without a
    fraction or exponent decode as {!Int} (counters survive a round trip
    exactly), and [\uXXXX] escapes are decoded to UTF-8 for the BMP only
    (no surrogate-pair recombination). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Integral floats keep a [".0"] so they
    re-parse as [Float]; NaN and infinities render as [null]. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj _)] looks up key [k]; [None] on non-objects. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] values convert too. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
