(* A bounded least-recently-used cache: hash table for O(1) lookup plus
   an intrusive doubly-linked list for O(1) recency maintenance and
   eviction.  Used by the server's statement cache (query text -> parsed
   AST).  Not thread-safe on its own — callers serialize access. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity <= 0";
  { capacity; table = Hashtbl.create capacity; head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node

let mem t k = Hashtbl.mem t.table k

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
