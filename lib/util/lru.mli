(** A bounded least-recently-used cache.

    O(1) [find]/[add] via a hash table plus an intrusive recency list;
    inserting into a full cache evicts the least recently used entry.
    Not thread-safe — callers serialize access (the server's statement
    cache wraps it in a mutex). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument when [capacity <= 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int
(** Entries currently cached (<= capacity). *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit marks the entry most recently used. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, marking the entry most recently used; evicts
    the least recently used entry when the cache is full. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without touching recency. *)

val clear : ('k, 'v) t -> unit
