let insertion_sort ?(lo = 0) ?hi ~cmp a =
  let hi = match hi with Some h -> h | None -> Array.length a - 1 in
  for i = lo + 1 to hi do
    let v = a.(i) in
    let j = ref (i - 1) in
    let continue = ref true in
    while !continue && !j >= lo do
      if Counters.counting_cmp cmp a.(!j) v > 0 then begin
        a.(!j + 1) <- a.(!j);
        Counters.bump_data_moves ();
        decr j
      end
      else continue := false
    done;
    if !j + 1 <> i then begin
      a.(!j + 1) <- v;
      Counters.bump_data_moves ()
    end
  done

let swap a i j =
  if i <> j then begin
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp;
    Counters.bump_data_moves ~n:2 ()
  end

(* Median-of-three pivot selection: order a.(lo), a.(mid), a.(hi) and use the
   middle value, which also acts as a sentinel for the partition loops. *)
let median_of_three ~cmp a lo hi =
  let mid = lo + ((hi - lo) / 2) in
  if Counters.counting_cmp cmp a.(mid) a.(lo) < 0 then swap a mid lo;
  if Counters.counting_cmp cmp a.(hi) a.(lo) < 0 then swap a hi lo;
  if Counters.counting_cmp cmp a.(hi) a.(mid) < 0 then swap a hi mid;
  a.(mid)

(* Sort a.(lo) .. a.(hi) inclusive: median-of-three quicksort down to
   [cutoff]-sized subarrays, then one insertion-sort pass over the range
   cleans up all small subarrays at once (each element is at most
   [cutoff - 1] slots from home). *)
let sort_range ~cutoff ~cmp a lo hi =
  let rec quick lo hi =
    if hi - lo + 1 > cutoff then begin
      let pivot = median_of_three ~cmp a lo hi in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while Counters.counting_cmp cmp a.(!i) pivot < 0 do incr i done;
        while Counters.counting_cmp cmp a.(!j) pivot > 0 do decr j done;
        if !i <= !j then begin
          swap a !i !j;
          incr i;
          decr j
        end
      done;
      quick lo !j;
      quick !i hi
    end
  in
  if hi > lo then begin
    quick lo hi;
    insertion_sort ~lo ~hi ~cmp a
  end

let sort ?(cutoff = 10) ~cmp a =
  if cutoff < 1 then invalid_arg "Qsort.sort: cutoff must be >= 1";
  sort_range ~cutoff ~cmp a 0 (Array.length a - 1)

(* Merge src.[lo, mid) and src.[mid, hi) into dst.[lo, hi), counting one
   data move per element placed (mirrors the merge in Join.sort_merge). *)
let merge_ranges ~cmp src dst lo mid hi =
  let i = ref lo and j = ref mid and k = ref lo in
  while !i < mid && !j < hi do
    if Counters.counting_cmp cmp src.(!i) src.(!j) <= 0 then begin
      dst.(!k) <- src.(!i);
      incr i
    end
    else begin
      dst.(!k) <- src.(!j);
      incr j
    end;
    Counters.bump_data_moves ();
    incr k
  done;
  while !i < mid do
    dst.(!k) <- src.(!i);
    Counters.bump_data_moves ();
    incr i;
    incr k
  done;
  while !j < hi do
    dst.(!k) <- src.(!j);
    Counters.bump_data_moves ();
    incr j;
    incr k
  done

(* --- DPG-style cache-efficient sort ------------------------------------ *)

(* The kernel behind PAPERS.md cs/0308004 ("A Cache-Efficient Accelerator
   for Sorting and for Join Operators"): keep every quicksort working set
   cache-resident by sorting fixed-size runs, then combine the runs with
   streaming pairwise merges — sequential access patterns the prefetcher
   loves, instead of quicksort's deep cache-hostile recursion over the
   whole array.  Runs are quicksorted with the paper's counted
   [sort_range] and merged with the counted [merge_ranges], so the
   operation tallies stay honest; the comparison count differs from plain
   quicksort's (merge rounds replace deep recursion) but keeps the same
   O(n log n) envelope. *)

let default_run = 4096

let sort_dpg ?(cutoff = 10) ?(run = default_run) ~cmp a =
  if cutoff < 1 then invalid_arg "Qsort.sort_dpg: cutoff must be >= 1";
  if run < 2 then invalid_arg "Qsort.sort_dpg: run must be >= 2";
  let n = Array.length a in
  if n <= run then sort ~cutoff ~cmp a
  else begin
    (* Phase 1: sort cache-sized runs in place. *)
    let runs = ref [] in
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + run) in
      sort_range ~cutoff ~cmp a !lo (hi - 1);
      runs := (!lo, hi) :: !runs;
      lo := hi
    done;
    let runs = ref (List.rev !runs) in
    (* Phase 2: streaming pairwise merge rounds, ping-ponging between the
       array and a scratch buffer. *)
    let scratch = Array.make n a.(0) in
    let src = ref a and dst = ref scratch in
    while List.length !runs > 1 do
      let rec pair = function
        | (lo1, mid) :: (lo2, hi) :: rest ->
            assert (mid = lo2);
            let s = !src and d = !dst in
            merge_ranges ~cmp s d lo1 mid hi;
            (lo1, hi) :: pair rest
        | [ (lo, hi) ] ->
            Array.blit !src lo !dst lo (hi - lo);
            [ (lo, hi) ]
        | [] -> []
      in
      runs := pair !runs;
      let tmp = !src in
      src := !dst;
      dst := tmp
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

(* --- kernel selection --------------------------------------------------- *)

type kernel = Quicksort | Dpg

let kernel_name = function Quicksort -> "qsort" | Dpg -> "dpg"

type mode = Auto | Force of kernel

(* Below this cardinality a DPG pass cannot beat plain quicksort: the
   whole array already fits in cache (one run). *)
let dpg_threshold = default_run

let mode_of_env = function
  | Some "qsort" -> Force Quicksort
  | Some "dpg" -> Force Dpg
  | _ -> Auto

let mode_ref = ref (mode_of_env (Sys.getenv_opt "MMDB_SORT"))

let mode () = !mode_ref
let set_mode m = mode_ref := m

(* The selection rule (see DESIGN.md "Batched execution"): a forced
   kernel always wins; in auto mode DPG is chosen only when the batched
   paths are active ([batched], so MMDB_BATCH=0 stays paper-faithful)
   and the array is big enough to span more than one cache-sized run. *)
let choose ~n ~batched =
  match !mode_ref with
  | Force k -> k
  | Auto -> if batched && n >= dpg_threshold then Dpg else Quicksort

(* Below this size the slice sorts finish faster than the fork/join
   round trips they would save. *)
let parallel_threshold = 2048

let sort_parallel ?(cutoff = 10) ~pool ~cmp a =
  if cutoff < 1 then invalid_arg "Qsort.sort_parallel: cutoff must be >= 1";
  let n = Array.length a in
  if n < parallel_threshold || Domain_pool.size pool <= 1
     || Domain_pool.in_worker ()
  then sort ~cutoff ~cmp a
  else begin
    (* Phase 1: quicksort disjoint slices in place, one per worker. *)
    let ranges = Domain_pool.chunks ~n ~pieces:(Domain_pool.size pool) in
    Domain_pool.parallel_iter pool
      (fun (lo, hi) -> sort_range ~cutoff ~cmp a lo (hi - 1))
      ranges;
    (* Phase 2: parallel pairwise merge rounds, ping-ponging between the
       input array and a scratch buffer; blit back if the final round
       lands in the scratch. *)
    let scratch = Array.make n a.(0) in
    let src = ref a and dst = ref scratch in
    let runs = ref (Array.to_list ranges) in
    while List.length !runs > 1 do
      let rec pair = function
        | (lo1, mid) :: (lo2, hi) :: rest ->
            assert (mid = lo2);
            `Merge (lo1, mid, hi) :: pair rest
        | [ (lo, hi) ] -> [ `Copy (lo, hi) ]
        | [] -> []
      in
      let jobs = Array.of_list (pair !runs) in
      let s = !src and d = !dst in
      Domain_pool.parallel_iter pool
        (function
          | `Merge (lo, mid, hi) -> merge_ranges ~cmp s d lo mid hi
          | `Copy (lo, hi) -> Array.blit s lo d lo (hi - lo))
        jobs;
      runs :=
        List.map
          (function `Merge (lo, _, hi) -> (lo, hi) | `Copy (lo, hi) -> (lo, hi))
          (Array.to_list jobs);
      let tmp = !src in
      src := !dst;
      dst := tmp
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

(* One entry point over both kernels: DPG runs sequentially (its merge
   passes are the cache win); quicksort takes the parallel slice-sort
   path when a pool is available. *)
let sort_with ?cutoff ?pool kernel ~cmp a =
  match kernel with
  | Dpg -> sort_dpg ?cutoff ~cmp a
  | Quicksort -> (
      match pool with
      | Some pool when not (Domain_pool.in_worker ()) ->
          sort_parallel ?cutoff ~pool ~cmp a
      | _ -> sort ?cutoff ~cmp a)

let is_sorted ~cmp a =
  let n = Array.length a in
  let rec check i = i >= n || (cmp a.(i - 1) a.(i) <= 0 && check (i + 1)) in
  check 1
