(** The paper's sort routine.

    §3.3.2: "The sort was done using quicksort with an insertion sort for
    subarrays of ten elements or less", and footnote 6 records that 10 was
    found to be the optimal cutoff experimentally.  Ablation bench A3
    re-runs that experiment, so the cutoff is a parameter here.

    Comparisons and data movement are tallied through {!Counters} so tests
    can check the O(n log n) shape and the duplicate-heavy behaviour the
    paper observes in Project Test 2 (nearly-sorted subarrays make the
    insertion-sort phase cheap). *)

val insertion_sort :
  ?lo:int -> ?hi:int -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** [insertion_sort ~lo ~hi ~cmp a] sorts [a.(lo) .. a.(hi)] inclusive in
    place.  Defaults cover the whole array.  Stable. *)

val sort : ?cutoff:int -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** [sort ~cutoff ~cmp a] sorts [a] in place: median-of-three quicksort,
    switching to insertion sort for subarrays of [cutoff] elements or less.
    [cutoff] defaults to 10, the paper's optimum.  Not stable. *)

val sort_parallel :
  ?cutoff:int -> pool:Domain_pool.t -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** [sort_parallel ~pool ~cmp a] sorts [a] in place using the pool:
    disjoint slices are quicksorted concurrently, then merged in parallel
    pairwise rounds.  Falls back to {!sort} for small arrays (< 2048),
    sequential pools, or when called from a pool worker — in those cases
    the comparison/move counts are identical to {!sort}; in the parallel
    case they differ (merge rounds replace deep quicksort recursion) but
    stay within the same O(n log n) envelope.  Not stable. *)

val is_sorted : cmp:('a -> 'a -> int) -> 'a array -> bool
(** [is_sorted ~cmp a] checks nondecreasing order (no counters bumped). *)
