(** The paper's sort routine.

    §3.3.2: "The sort was done using quicksort with an insertion sort for
    subarrays of ten elements or less", and footnote 6 records that 10 was
    found to be the optimal cutoff experimentally.  Ablation bench A3
    re-runs that experiment, so the cutoff is a parameter here.

    Comparisons and data movement are tallied through {!Counters} so tests
    can check the O(n log n) shape and the duplicate-heavy behaviour the
    paper observes in Project Test 2 (nearly-sorted subarrays make the
    insertion-sort phase cheap). *)

val insertion_sort :
  ?lo:int -> ?hi:int -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** [insertion_sort ~lo ~hi ~cmp a] sorts [a.(lo) .. a.(hi)] inclusive in
    place.  Defaults cover the whole array.  Stable. *)

val sort : ?cutoff:int -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** [sort ~cutoff ~cmp a] sorts [a] in place: median-of-three quicksort,
    switching to insertion sort for subarrays of [cutoff] elements or less.
    [cutoff] defaults to 10, the paper's optimum.  Not stable. *)

val sort_parallel :
  ?cutoff:int -> pool:Domain_pool.t -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** [sort_parallel ~pool ~cmp a] sorts [a] in place using the pool:
    disjoint slices are quicksorted concurrently, then merged in parallel
    pairwise rounds.  Falls back to {!sort} for small arrays (< 2048),
    sequential pools, or when called from a pool worker — in those cases
    the comparison/move counts are identical to {!sort}; in the parallel
    case they differ (merge rounds replace deep quicksort recursion) but
    stay within the same O(n log n) envelope.  Not stable. *)

(** {1 DPG-style cache-efficient sort}

    The alternative kernel of PAPERS.md cs/0308004: quicksort
    cache-sized runs, then combine them with streaming pairwise merge
    rounds — sequential access instead of deep cache-hostile recursion.
    Comparison/move counts go through the same counted primitives as
    {!sort} (different totals, same O(n log n) envelope). *)

val default_run : int
(** 4096 elements: the run size that keeps a quicksort working set
    cache-resident. *)

val sort_dpg :
  ?cutoff:int -> ?run:int -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** [sort_dpg ~cmp a] sorts in place: [run]-sized quicksorted runs plus
    pairwise merge rounds.  Falls back to {!sort} when [a] fits in one
    run.  Not stable. *)

type kernel = Quicksort | Dpg

val kernel_name : kernel -> string
(** ["qsort"] / ["dpg"] — the names EXPLAIN and the bench JSONL use. *)

type mode = Auto | Force of kernel

val mode : unit -> mode
val set_mode : mode -> unit
(** Initialized from [MMDB_SORT] ([qsort] | [dpg] | [auto], default
    auto). *)

val dpg_threshold : int
(** In auto mode, arrays below this cardinality always use quicksort
    (they fit in one cache-sized run). *)

val choose : n:int -> batched:bool -> kernel
(** The selection rule: a forced mode wins; in auto mode DPG is chosen
    only for [batched] execution (so the MMDB_BATCH=0 ablation stays
    paper-faithful) at [n >= dpg_threshold]. *)

val sort_with :
  ?cutoff:int ->
  ?pool:Domain_pool.t ->
  kernel ->
  cmp:('a -> 'a -> int) ->
  'a array ->
  unit
(** Dispatch on the chosen kernel: [Dpg] runs {!sort_dpg} sequentially;
    [Quicksort] uses {!sort_parallel} when a usable pool is given, else
    {!sort}. *)

val is_sorted : cmp:('a -> 'a -> int) -> 'a array -> bool
(** [is_sorted ~cmp a] checks nondecreasing order (no counters bumped). *)
