(* A fixed-capacity sliding window of float samples (latencies, sizes).

   The server records one sample per request; percentile queries sort a
   copy of the window on demand, so recording stays O(1) on the hot path
   and the memory footprint is bounded no matter how long the server
   runs.  Not thread-safe on its own — callers serialize access. *)

type t = {
  data : float array;
  mutable count : int;  (* valid samples, <= capacity *)
  mutable next : int;  (* ring cursor *)
  mutable total : int;  (* lifetime samples, for reporting *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Reservoir.create: capacity <= 0";
  { data = Array.make capacity 0.0; count = 0; next = 0; total = 0 }

let add t x =
  let cap = Array.length t.data in
  t.data.(t.next) <- x;
  t.next <- (t.next + 1) mod cap;
  if t.count < cap then t.count <- t.count + 1;
  t.total <- t.total + 1

let count t = t.count
let total t = t.total

let samples t = Array.sub t.data 0 t.count

let percentile t p =
  if t.count = 0 then None else Some (Stats.percentile (samples t) p)

let mean t = if t.count = 0 then None else Some (Stats.mean (samples t))

let max_sample t =
  if t.count = 0 then None
  else Some (Array.fold_left Float.max neg_infinity (samples t))
