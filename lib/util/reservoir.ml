(* A fixed-capacity sliding window of float samples (latencies, sizes).

   The server records one sample per request; percentile queries sort a
   copy of the window on demand, so recording stays O(1) on the hot path
   and the memory footprint is bounded no matter how long the server
   runs.  Thread-safe: samples are recorded from handler threads while
   the SIGUSR1/STATUS dump path reads a snapshot, so every operation
   takes the internal mutex (recording holds it for a few stores). *)

type t = {
  m : Mutex.t;
  data : float array;
  mutable count : int;  (* valid samples, <= capacity *)
  mutable next : int;  (* ring cursor *)
  mutable total : int;  (* lifetime samples, for reporting *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Reservoir.create: capacity <= 0";
  { m = Mutex.create (); data = Array.make capacity 0.0; count = 0; next = 0;
    total = 0 }

let locked t f =
  Mutex.lock t.m;
  let r = try f () with e -> Mutex.unlock t.m; raise e in
  Mutex.unlock t.m;
  r

let add t x =
  locked t (fun () ->
      let cap = Array.length t.data in
      t.data.(t.next) <- x;
      t.next <- (t.next + 1) mod cap;
      if t.count < cap then t.count <- t.count + 1;
      t.total <- t.total + 1)

let count t = locked t (fun () -> t.count)
let total t = locked t (fun () -> t.total)

let samples t = locked t (fun () -> Array.sub t.data 0 t.count)

let percentile t p =
  let s = samples t in
  if Array.length s = 0 then None else Some (Stats.percentile s p)

let mean t =
  let s = samples t in
  if Array.length s = 0 then None else Some (Stats.mean s)

let max_sample t =
  let s = samples t in
  if Array.length s = 0 then None
  else Some (Array.fold_left Float.max neg_infinity s)
