(** A fixed-capacity sliding window of float samples.

    Recording is O(1); {!percentile} sorts a copy of the window on demand.
    Used by the network server for p50/p99 request latency over the most
    recent requests.  Thread-safe: every operation takes an internal
    mutex, so handler threads can record while the metrics dump path
    reads a consistent snapshot. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val add : t -> float -> unit
(** Record a sample, evicting the oldest once the window is full. *)

val count : t -> int
(** Samples currently held (<= capacity). *)

val total : t -> int
(** Lifetime samples recorded, including evicted ones. *)

val samples : t -> float array
(** A copy of the current window, unordered. *)

val percentile : t -> float -> float option
(** [percentile t p] for [p] in [0..100]; [None] when empty. *)

val mean : t -> float option
val max_sample : t -> float option
