(* Fixed-size time-series ring buffers for serving telemetry.

   Two ring shapes over the same bucketing scheme: a numeric ring (one
   float accumulator per time bucket — counts, sums) and a histogram
   ring (one {!Histogram} per bucket — windowed latency quantiles).
   Bucket [id] covers [[id*width, (id+1)*width)] seconds on the caller's
   clock; the ring keeps the last [buckets] ids and lazily resets a slot
   when a newer id claims it, so writes are O(1) and an idle series
   costs nothing.  A 120 x 1 s ring answers "the last minute" and "the
   last two minutes" from the same storage.

   The clock is injectable ([?now], default [Unix.gettimeofday]) so
   tests drive the rings deterministically.  Not synchronized —
   {!Mmdb_net.Metrics} already serializes access under its own mutex,
   matching {!Histogram}'s contract. *)

type t = {
  width : float;  (* seconds per bucket *)
  ids : int array;  (* which bucket id currently occupies each slot *)
  sums : float array;
}

let default_buckets = 120

let create ?(buckets = default_buckets) ?(width = 1.0) () =
  if buckets <= 0 then invalid_arg "Timeseries.create: buckets must be > 0";
  if width <= 0.0 then invalid_arg "Timeseries.create: width must be > 0";
  { width; ids = Array.make buckets min_int; sums = Array.make buckets 0.0 }

let capacity t = Array.length t.ids
let span t = t.width *. float_of_int (capacity t)

let bucket_id t now = int_of_float (Float.floor (now /. t.width))

let slot_for t id =
  let n = capacity t in
  ((id mod n) + n) mod n

let add ?now t v =
  let now = match now with Some x -> x | None -> Unix.gettimeofday () in
  let id = bucket_id t now in
  let slot = slot_for t id in
  if t.ids.(slot) <> id then begin
    t.ids.(slot) <- id;
    t.sums.(slot) <- 0.0
  end;
  t.sums.(slot) <- t.sums.(slot) +. v

(* Sum of the buckets covering the last [window] seconds (the current,
   possibly partial, bucket included).  [window] is clamped to the
   ring's span — asking for more history than the ring keeps answers
   with what it has. *)
let sum ?now t ~window =
  let now = match now with Some x -> x | None -> Unix.gettimeofday () in
  let cur = bucket_id t now in
  let k =
    let raw = int_of_float (Float.ceil (window /. t.width)) in
    max 1 (min raw (capacity t))
  in
  let acc = ref 0.0 in
  for id = cur - k + 1 to cur do
    let slot = slot_for t id in
    if t.ids.(slot) = id then acc := !acc +. t.sums.(slot)
  done;
  !acc

(* Per-second rate over the last [window] seconds. *)
let rate ?now t ~window =
  if window <= 0.0 then 0.0 else sum ?now t ~window /. window

(* The live buckets of the last [window] seconds, oldest first, as
   [(bucket_start_seconds, sum)] — empty buckets are skipped. *)
let points ?now t ~window =
  let now = match now with Some x -> x | None -> Unix.gettimeofday () in
  let cur = bucket_id t now in
  let k =
    let raw = int_of_float (Float.ceil (window /. t.width)) in
    max 1 (min raw (capacity t))
  in
  let out = ref [] in
  for id = cur downto cur - k + 1 do
    let slot = slot_for t id in
    if t.ids.(slot) = id then
      out := (float_of_int id *. t.width, t.sums.(slot)) :: !out
  done;
  !out

(* --- histogram ring ---------------------------------------------------- *)

type hist = {
  hwidth : float;
  hids : int array;
  hists : Histogram.t array;
}

let create_hist ?(buckets = default_buckets) ?(width = 1.0) () =
  if buckets <= 0 then invalid_arg "Timeseries.create_hist: buckets must be > 0";
  if width <= 0.0 then invalid_arg "Timeseries.create_hist: width must be > 0";
  {
    hwidth = width;
    hids = Array.make buckets min_int;
    hists = Array.init buckets (fun _ -> Histogram.create ());
  }

let hslot_for h id =
  let n = Array.length h.hids in
  ((id mod n) + n) mod n

let observe ?now h x =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let id = int_of_float (Float.floor (now /. h.hwidth)) in
  let slot = hslot_for h id in
  if h.hids.(slot) <> id then begin
    h.hids.(slot) <- id;
    h.hists.(slot) <- Histogram.create ()
  end;
  Histogram.add h.hists.(slot) x

(* A fresh histogram merging every live bucket of the last [window]
   seconds — feed it to {!Histogram.percentile} for windowed p50/p99. *)
let merged ?now h ~window =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let cur = int_of_float (Float.floor (now /. h.hwidth)) in
  let k =
    let raw = int_of_float (Float.ceil (window /. h.hwidth)) in
    max 1 (min raw (Array.length h.hids))
  in
  let out = Histogram.create () in
  for id = cur - k + 1 to cur do
    let slot = hslot_for h id in
    if h.hids.(slot) = id then Histogram.merge_into ~into:out h.hists.(slot)
  done;
  out
