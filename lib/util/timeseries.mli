(** Fixed-size time-series ring buffers for serving telemetry.

    A ring of [buckets] slots, each [width] seconds wide, keyed by
    [floor (now / width)].  Writes lazily evict stale slots, so the
    structure is O(1) per update with zero background work.  The clock
    is injectable for tests; production callers omit [?now] and get
    [Unix.gettimeofday].  Not internally synchronized — guard with the
    owner's mutex (as {!Mmdb_net.Metrics} does). *)

type t
(** Numeric ring: one float accumulator per time bucket. *)

val create : ?buckets:int -> ?width:float -> unit -> t
(** [create ()] is a 120-bucket, 1 s-wide ring (two minutes of history).
    Raises [Invalid_argument] on non-positive [buckets] or [width]. *)

val capacity : t -> int
(** Number of buckets in the ring. *)

val span : t -> float
(** Total history the ring can hold, in seconds ([capacity * width]). *)

val add : ?now:float -> t -> float -> unit
(** [add t v] accumulates [v] into the current bucket. *)

val sum : ?now:float -> t -> window:float -> float
(** Sum over the buckets covering the last [window] seconds (current
    partial bucket included; [window] clamped to {!span}). *)

val rate : ?now:float -> t -> window:float -> float
(** [sum /. window]: per-second rate over the last [window] seconds. *)

val points : ?now:float -> t -> window:float -> (float * float) list
(** Live buckets of the last [window] seconds, oldest first, as
    [(bucket_start_seconds, sum)]; empty buckets are skipped. *)

(** {1 Histogram ring}

    Same bucketing, but each slot holds a {!Histogram} — merge the live
    slots of a window to answer "p99 over the last minute". *)

type hist

val create_hist : ?buckets:int -> ?width:float -> unit -> hist

val observe : ?now:float -> hist -> float -> unit
(** Record one sample into the current bucket's histogram. *)

val merged : ?now:float -> hist -> window:float -> Histogram.t
(** Fresh histogram merging every live bucket of the last [window]
    seconds; feed to {!Histogram.percentile} for windowed quantiles. *)
