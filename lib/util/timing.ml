let now () = Unix.gettimeofday ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)

(* Run [f] [repeats] times and report the median-time run — result and
   elapsed time from the *same* run, so a caller inspecting the result
   sees the execution whose time it was told about. *)
let time_median ?(repeats = 3) f =
  if repeats < 1 then invalid_arg "Timing.time_median: repeats < 1";
  let samples = Array.init repeats (fun _ -> time f) in
  let order = Array.init repeats Fun.id in
  Array.sort (fun a b -> compare (snd samples.(a)) (snd samples.(b))) order;
  samples.(order.(repeats / 2))
