(** Wall-clock measurement of CPU-bound in-memory operations, standing in
    for the paper's getrusage-style timer (§3.1). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] once and returns its result and elapsed seconds. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] exactly [repeats] times (default 3,
    must be >= 1) and returns the result {e and} elapsed seconds of the
    median-time run — the pair always comes from the same execution.
    Damps scheduler noise for the benchmark sweeps; side effects of [f]
    happen [repeats] times. *)
