(* Per-query trace spans.

   A trace is a tree of spans collected while one query executes: each
   span records a name, free-form attributes, wall time, the counter
   delta (§3.1's comparisons / data moves / hash calls / pointer
   dereferences) accumulated while it was open, and the id of the domain
   it ran on.  Operators ({!Mmdb_core}), the optimizer, the lock manager
   and the serving layer all call {!with_span} unconditionally; the
   collector is installed in a domain-local slot, so when no trace is
   active (the default) the call is one DLS read and a branch — no
   allocation, no clock read, no counter snapshot.

   Collection is domain-local on purpose: a span opened on a worker
   domain of a {!Domain_pool} fan-out would race the coordinator's tree,
   so those spans are simply not collected.  Counter deltas still include
   the workers' operations because open/close snapshots use the merged
   {!Counters.snapshot}; only the *tree structure* is limited to the
   coordinating domain.  (On the server, read-only statements execute
   entirely on one reader domain — nested fan-out is forbidden — so their
   traces are complete.) *)

type span = {
  sp_name : string;
  mutable sp_attrs : (string * string) list;  (* insertion order *)
  sp_domain : int;
  sp_start : float;  (* Unix.gettimeofday at open *)
  mutable sp_elapsed : float;  (* seconds; -1.0 while open *)
  mutable sp_counters : Counters.snapshot;  (* inclusive delta at close *)
  mutable sp_children : span list;  (* execution order once closed *)
}

type t = {
  mutable root : span option;
  mutable stack : span list;  (* innermost open span first *)
}

let create () = { root = None; stack = [] }

let root t = t.root

(* The installed collector for this domain; [None] means tracing is off,
   which is the hot-path case every operator hits. *)
let current_key : t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get current_key <> None

(* A queue-wait measured by the executor queue *before* the traced job
   body ran (and therefore before any collector was installed).  The
   queue stashes it here; {!run} drains it into the root span.  One slot,
   overwritten per job, so a stale offer from an untraced job cannot
   outlive the next job on the same domain. *)
let pending_wait_key : (string * float) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let offer_wait ~name elapsed =
  Domain.DLS.set pending_wait_key (Some (name, elapsed))

let open_span tr ?(attrs = []) name =
  let sp =
    {
      sp_name = name;
      sp_attrs = attrs;
      sp_domain = (Domain.self () :> int);
      sp_start = Unix.gettimeofday ();
      sp_elapsed = -1.0;
      sp_counters = Counters.zero;
      sp_children = [];
    }
  in
  tr.stack <- sp :: tr.stack;
  sp

let close_span tr sp ~opened =
  sp.sp_elapsed <- Unix.gettimeofday () -. sp.sp_start;
  sp.sp_counters <- Counters.diff (Counters.snapshot ()) opened;
  sp.sp_children <- List.rev sp.sp_children;
  (match tr.stack with
  | top :: rest when top == sp -> tr.stack <- rest
  | _ -> () (* unbalanced close after an exception deeper down *));
  match tr.stack with
  | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
  | [] -> if tr.root = None then tr.root <- Some sp

let with_span ?attrs name f =
  match Domain.DLS.get current_key with
  | None -> f ()
  | Some tr ->
      let opened = Counters.snapshot () in
      let sp = open_span tr ?attrs name in
      Fun.protect ~finally:(fun () -> close_span tr sp ~opened) f

let add_attr k v =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some tr -> (
      match tr.stack with
      | sp :: _ -> sp.sp_attrs <- sp.sp_attrs @ [ (k, v) ]
      | [] -> ())

(* Attach an already-measured interval (e.g. a queue wait) as a closed
   child of the innermost open span. *)
let record ?(attrs = []) name ~elapsed =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some tr -> (
      match tr.stack with
      | parent :: _ ->
          parent.sp_children <-
            {
              sp_name = name;
              sp_attrs = attrs;
              sp_domain = (Domain.self () :> int);
              sp_start = Unix.gettimeofday () -. elapsed;
              sp_elapsed = elapsed;
              sp_counters = Counters.zero;
              sp_children = [];
            }
            :: parent.sp_children
      | [] -> ())

(* Run [f] with [tr] installed, wrapping it in a root span.  A collector
   already installed — the server tracing a statement that is itself an
   EXPLAIN ANALYZE — is suspended for the duration and restored after:
   the outer trace loses the nested subtree's *structure* but keeps
   correct inclusive counters (open/close snapshots bracket the nested
   work), while [tr] collects the complete inner tree. *)
let run tr ~name f =
  let outer = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some tr);
  let opened = Counters.snapshot () in
  let sp = open_span tr name in
  (match Domain.DLS.get pending_wait_key with
  | Some (wname, elapsed) ->
      Domain.DLS.set pending_wait_key None;
      record wname ~elapsed
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      close_span tr sp ~opened;
      Domain.DLS.set current_key outer)
    f

(* --- inspection -------------------------------------------------------- *)

(* Exclusive counters: a span's own operations, children's removed.  By
   construction the exclusive counters of every span in a tree sum to the
   root's inclusive delta — the tiling identity EXPLAIN ANALYZE's totals
   row relies on. *)
let exclusive_counters sp =
  List.fold_left
    (fun acc child -> Counters.diff acc child.sp_counters)
    sp.sp_counters sp.sp_children

let rec fold f acc ~depth sp =
  let acc = f acc ~depth sp in
  List.fold_left (fun acc c -> fold f acc ~depth:(depth + 1) c) acc
    sp.sp_children

let spans sp =
  List.rev (fold (fun acc ~depth s -> (depth, s) :: acc) [] ~depth:0 sp)

let attr sp k = List.assoc_opt k sp.sp_attrs

(* --- rendering --------------------------------------------------------- *)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Fmt.pf ppf " {%a}"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) ->
             Fmt.pf ppf "%s=%s" k v))
        attrs

let pp_tree ppf sp =
  List.iter
    (fun (depth, s) ->
      Fmt.pf ppf "%s%s: %.3fms%a [%a]@,"
        (String.make (2 * depth) ' ')
        s.sp_name (s.sp_elapsed *. 1000.0) pp_attrs s.sp_attrs Counters.pp
        s.sp_counters)
    (spans sp)

let rec to_json sp =
  let c = sp.sp_counters in
  Json.Obj
    ([
       ("name", Json.Str sp.sp_name);
       ("domain", Json.Int sp.sp_domain);
       ("elapsed_ms", Json.Float (sp.sp_elapsed *. 1000.0));
       ("comparisons", Json.Int c.Counters.comparisons);
       ("data_moves", Json.Int c.Counters.data_moves);
       ("hash_calls", Json.Int c.Counters.hash_calls);
       ("ptr_derefs", Json.Int c.Counters.ptr_derefs);
     ]
    @ (match sp.sp_attrs with
      | [] -> []
      | attrs ->
          [
            ( "attrs",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs) );
          ])
    @
    match sp.sp_children with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map to_json cs)) ])
