(** Per-query trace spans.

    A trace is a tree of spans collected while one query executes: each span
    records a name, free-form attributes, wall time, the {!Counters} delta
    (the paper's §3.1 operation counts) accumulated while it was open, and
    the id of the domain it ran on.  Operators, the optimizer, the lock
    manager and the serving layer call {!with_span} unconditionally; the
    collector lives in a domain-local slot, so when no trace is active (the
    default) the call is one DLS read and a branch — no allocation, no clock
    read, no counter snapshot.

    Collection is domain-local on purpose: spans opened on worker domains of
    a parallel fan-out are not collected (they would race the coordinator's
    tree), but their {e counter} contributions still appear in the enclosing
    span because open/close snapshots use the merged cross-domain
    {!Counters.snapshot}. *)

type span = {
  sp_name : string;
  mutable sp_attrs : (string * string) list;  (** insertion order *)
  sp_domain : int;  (** domain the span was opened on *)
  sp_start : float;  (** [Unix.gettimeofday] at open *)
  mutable sp_elapsed : float;  (** seconds; [-1.0] while still open *)
  mutable sp_counters : Counters.snapshot;
      (** inclusive counter delta, set at close *)
  mutable sp_children : span list;  (** execution order once closed *)
}

type t
(** A collector: holds the finished root span and the stack of open spans. *)

val create : unit -> t

val root : t -> span option
(** The finished root span; [None] until {!run} completes. *)

val active : unit -> bool
(** Is a trace installed on the calling domain? *)

val run : t -> name:string -> (unit -> 'a) -> 'a
(** [run tr ~name f] installs [tr] on the calling domain, wraps [f] in a
    root span called [name], and uninstalls on exit (exceptions included).
    Any pending {!offer_wait} interval is attached as a first child.

    A collector already active on this domain (the server tracing a
    statement that is itself an EXPLAIN ANALYZE) is suspended for the
    duration and restored after: the outer trace loses the nested
    subtree's structure but keeps correct inclusive counters, while [tr]
    collects the complete inner tree. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a child span of the innermost open
    span when a trace is active, and is a near-free passthrough otherwise.
    Safe to call unconditionally from hot paths. *)

val add_attr : string -> string -> unit
(** Attach a key/value attribute to the innermost open span, if any. *)

val record : ?attrs:(string * string) list -> string -> elapsed:float -> unit
(** Attach an already-measured interval (e.g. a lock wait) as a closed,
    zero-counter child of the innermost open span, if any. *)

val offer_wait : name:string -> float -> unit
(** Stash a queue-wait measured {e before} the traced job body ran; the
    next {!run} on this domain drains it into its root span.  Single slot,
    overwritten per job. *)

(** {1 Inspection} *)

val exclusive_counters : span -> Counters.snapshot
(** A span's own operations with its children's removed.  The exclusive
    counters of every span in a tree sum exactly to the root's inclusive
    delta — the identity EXPLAIN ANALYZE's totals row relies on. *)

val fold :
  ('acc -> depth:int -> span -> 'acc) -> 'acc -> depth:int -> span -> 'acc
(** Pre-order fold over a (closed) span tree. *)

val spans : span -> (int * span) list
(** Pre-order [(depth, span)] listing of a closed tree. *)

val attr : span -> string -> string option

(** {1 Rendering} *)

val pp_tree : Format.formatter -> span -> unit
(** Indented one-line-per-span rendering with times, attrs and counters. *)

val to_json : span -> Json.t
(** Span tree as JSON: name, domain, [elapsed_ms], the four §3.1 counters,
    attrs, children. *)
