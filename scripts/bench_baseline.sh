#!/usr/bin/env bash
# Refresh the checked-in performance baselines.  Runs the server, join
# (batched execution), advisor and micro experiments with JSONL output and
# rewrites BENCH_server.json / BENCH_join.json / BENCH_advisor.json /
# BENCH_micro.json at the repo root, then asserts the acceptance bounds
# from the fresh JSONL:
# under 2x overload, shed requests must exist (typed Overloaded replies)
# and the accepted p99 must stay within 3x the uncontended p99
# (`overload_ok`); with MVCC on, reader p99 under a background
# bulk-update writer must stay within 2x the uncontended reader p99
# (`mvcc_read_ok`); batched kernels must beat the tuple-at-a-time
# ablation by >= 1.3x on scan_select and hash_join; the 50%-hot-key
# partitioned join must land within 2x of uniform keys with at least one
# repartition/role-reversal event; and on the adversarial drift workload
# the cost-based planner plus index advisor must beat the rule-based
# baseline with at least one index created and one dropped
# (`advisor_ok`).  Bounded phases are retried a couple
# of times before failing: timing ratios on a loaded shared host carry
# scheduler noise even after the bench's own median smoothing.
#
#   dune build && scripts/bench_baseline.sh [--scale F]
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-1.0}"
if [[ "${1:-}" == "--scale" && -n "${2:-}" ]]; then
  SCALE="$2"
fi

BENCH=_build/default/bench/main.exe
[[ -x "$BENCH" ]] || { echo "build first: dune build" >&2; exit 2; }

check_overload() { # file -> 0 if the overload and mvcc records pass
  python3 - "$1" <<'PY'
import json, sys
overload_ok = False
mvcc_ok = False
for line in open(sys.argv[1]):
    rec = json.loads(line)
    if rec.get("experiment") != "server":
        continue
    if "overload_ok" in rec:
        print(
            "overload: accepted p99 %.3fms, uncontended p99 %.3fms, "
            "ratio %.2f, shed %d, ok=%d"
            % (
                rec["p99_accepted_ms"],
                rec["p99_uncontended_ms"],
                rec["p99_ratio"],
                rec["shed"],
                rec["overload_ok"],
            )
        )
        overload_ok = bool(rec["overload_ok"]) and rec["shed"] > 0
    if rec.get("mix") == "mvcc-read":
        print(
            "mvcc-read (mvcc=%d): contended p99 %.3fms, uncontended p99 "
            "%.3fms, ratio %.2f, bulk updates %d"
            % (
                rec["mvcc"],
                rec["p99_contended_ms"],
                rec["p99_uncontended_ms"],
                rec["p99_ratio"],
                rec["bulk_updates"],
            )
        )
        if rec["mvcc"] == 1:
            mvcc_ok = rec.get("mvcc_read_ok") == 1
sys.exit(0 if overload_ok and mvcc_ok else 1)
PY
}

echo "== server experiment (scale $SCALE) =="
for attempt in 1 2 3; do
  rm -f BENCH_server.json
  "$BENCH" --only server --scale "$SCALE" --out BENCH_server.json
  if check_overload BENCH_server.json; then
    break
  elif [[ "$attempt" == 3 ]]; then
    echo "FAIL: overload/mvcc bound violated on $attempt consecutive runs" >&2
    exit 1
  else
    echo "overload/mvcc bound missed (attempt $attempt), retrying..." >&2
  fi
done

check_batch() { # file -> 0 if the batched-execution records pass
  python3 - "$1" <<'PY'
import json, sys
# acceptance bounds (ISSUE 8): batched kernels >= 1.3x rows/sec over the
# tuple-at-a-time ablation on scan_select and hash_join at 30k scale, and
# the 50%-hot-key partitioned join within 2x of uniform keys.
speedups = {}
skew = None
for line in open(sys.argv[1]):
    rec = json.loads(line)
    if rec.get("experiment") != "join":
        continue
    if rec.get("section") == "batch_speedup":
        speedups[rec["op"]] = rec["speedup"]
    if rec.get("section") == "skew":
        skew = rec
ok = True
for op in ("scan_select", "hash_join"):
    s = speedups.get(op)
    print("batch speedup %-12s %s (need >= 1.3)" % (op, "%.2fx" % s if s else "missing"))
    ok = ok and s is not None and s >= 1.3
if skew is None:
    print("skew record missing")
    ok = False
else:
    print(
        "skew ratio %.2fx (need <= 2.0), repartitions %d, role_reversals %d"
        % (skew["skew_ratio"], skew["repartitions"], skew["role_reversals"])
    )
    ok = ok and skew["skew_ratio"] <= 2.0
    ok = ok and (skew["repartitions"] + skew["role_reversals"]) > 0
sys.exit(0 if ok else 1)
PY
}

echo "== join experiment (batched execution, scale $SCALE) =="
for attempt in 1 2 3; do
  rm -f BENCH_join.json
  "$BENCH" --only join --scale "$SCALE" --repeats 5 --out BENCH_join.json
  if check_batch BENCH_join.json; then
    break
  elif [[ "$attempt" == 3 ]]; then
    echo "FAIL: batched-execution bound violated on $attempt consecutive runs" >&2
    exit 1
  else
    echo "batched-execution bound missed (attempt $attempt), retrying..." >&2
  fi
done

check_advisor() { # file -> 0 if the advisor record passes
  python3 - "$1" <<'PY'
import json, sys
# acceptance bound (ISSUE 10): on the adversarial drift workload the
# cost-based planner plus index advisor must beat the rule-based
# baseline outright (speedup > 1.0 net of analyze/advise/build time),
# and the advisor must have both created and dropped indices across the
# hot-column drift.  The bench itself folds all of that into advisor_ok.
ok = False
for line in open(sys.argv[1]):
    rec = json.loads(line)
    if rec.get("experiment") != "advisor":
        continue
    print(
        "advisor: rule %.4fs, cost+advisor %.4fs, speedup %.2fx, "
        "created %d, dropped %d, active %d, ok=%d"
        % (
            rec["rule_s"],
            rec["cost_s"],
            rec["speedup"],
            rec["created"],
            rec["dropped"],
            rec["active"],
            rec["advisor_ok"],
        )
    )
    ok = rec["advisor_ok"] == 1 and rec["speedup"] > 1.0
sys.exit(0 if ok else 1)
PY
}

echo "== advisor experiment (cost-based planning + index advisor, scale $SCALE) =="
for attempt in 1 2 3; do
  rm -f BENCH_advisor.json
  "$BENCH" --only advisor --scale "$SCALE" --out BENCH_advisor.json
  if check_advisor BENCH_advisor.json; then
    break
  elif [[ "$attempt" == 3 ]]; then
    echo "FAIL: advisor bound violated on $attempt consecutive runs" >&2
    exit 1
  else
    echo "advisor bound missed (attempt $attempt), retrying..." >&2
  fi
done

echo "== micro experiment =="
rm -f BENCH_micro.json
"$BENCH" --only micro --scale "$SCALE" --out BENCH_micro.json

# Append one summary record per refresh to BENCH_trend.jsonl: the
# headline numbers of each baseline, stamped with revision and date, so
# performance drift across PRs is a one-file time series.
python3 - "$SCALE" <<'PY'
import json, subprocess, sys, time

def load(path):
    try:
        return [json.loads(l) for l in open(path)]
    except OSError:
        return []

server = load("BENCH_server.json")
join = load("BENCH_join.json")
advisor = load("BENCH_advisor.json")
micro = load("BENCH_micro.json")

trend = {
    "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "rev": subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True).stdout.strip() or "unknown",
    "scale": float(sys.argv[1]),
}
for rec in server:
    if "overload_ok" in rec:
        trend["overload_p99_ratio"] = rec["p99_ratio"]
    if rec.get("mix") == "mvcc-read" and rec.get("mvcc") == 1:
        trend["mvcc_read_p99_ratio"] = rec["p99_ratio"]
    if rec.get("mix") == "read-only (parallel readers)" and rec.get("clients") == 8:
        trend["readonly_8c_req_per_s"] = rec.get("req_per_s")
    if rec.get("mix") == "50/50 insert+select" and rec.get("clients") == 1:
        trend["mixed_1c_req_per_s"] = rec.get("req_per_s")
for rec in join:
    if rec.get("section") == "batch_speedup":
        trend["batch_speedup_" + rec["op"]] = rec["speedup"]
    if rec.get("section") == "skew":
        trend["skew_ratio"] = rec["skew_ratio"]
for rec in advisor:
    if rec.get("experiment") == "advisor":
        trend["advisor_speedup"] = rec["speedup"]
for rec in micro:
    if rec.get("op") and rec.get("ns_per_op") is not None:
        trend.setdefault("micro_ns", {})[rec["op"]] = rec["ns_per_op"]

with open("BENCH_trend.jsonl", "a") as f:
    f.write(json.dumps(trend) + "\n")
print("trend record appended to BENCH_trend.jsonl")
PY

echo "baselines refreshed: BENCH_server.json BENCH_join.json BENCH_advisor.json BENCH_micro.json"
