#!/usr/bin/env bash
# Observability smoke test: boots mmdb_server with workload capture and
# tracing, drives the example scripts, then checks the three PR-9
# surfaces end to end:
#
#   1. METRICS answers a parseable Prometheus text exposition whose
#      counters are monotonic across two polls;
#   2. EXPLAIN ANALYZE carries est_rows / actual_rows / err columns and
#      STATS carries the worst-misestimates table;
#   3. the capture file replays cleanly against a fresh server
#      (scripts/replay.sh), statement for statement.
#
# Artifacts (metrics dumps, capture, replay report) land in
# $OBS_ARTIFACTS when set (CI uploads them), else a temp dir.
#
#   dune build && scripts/observability_smoke.sh
set -euo pipefail

PORT="${MMDB_SMOKE_PORT:-7478}"
SERVER=_build/default/bin/mmdb_server.exe
CLIENT=_build/default/bin/mmdb_client.exe
ART="${OBS_ARTIFACTS:-$(mktemp -d)}"
mkdir -p "$ART"
LOG="$ART/server.log"
CAPTURE="$ART/capture.jsonl"
ANALYZE_SQL="$(mktemp --suffix=.sql)"

cleanup() {
  if [[ -n "${SERVER_PID:-}" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$ANALYZE_SQL"
}
trap cleanup EXIT

"$SERVER" --port "$PORT" --trace --capture "$CAPTURE" >"$LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if "$CLIENT" --port "$PORT" --ping >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$CLIENT" --port "$PORT" --ping

# drive a workload: the good script, then the failing one (captured
# errors must replay as errors)
"$CLIENT" --port "$PORT" examples/server_smoke.sql >/dev/null
if "$CLIENT" --port "$PORT" examples/server_smoke_bad.sql >/dev/null 2>&1; then
  echo "FAIL: bad script did not exit non-zero" >&2
  exit 1
fi

# EXPLAIN ANALYZE surfaces the cardinality-feedback columns
cat > "$ANALYZE_SQL" <<'SQL'
EXPLAIN ANALYZE SELECT Name FROM Employee WHERE Age BETWEEN 20 AND 30;
SQL
ANALYZE_OUT="$("$CLIENT" --port "$PORT" "$ANALYZE_SQL")"
echo "$ANALYZE_OUT" | grep -q 'est_rows'
echo "$ANALYZE_OUT" | grep -q 'actual_rows'
echo "$ANALYZE_OUT" | grep -q 'err'

# STATS carries the worst-misestimates table and the windowed figures
STATS_OUT="$("$CLIENT" --port "$PORT" --stats)"
echo "$STATS_OUT" | grep -q '"worst_misestimates"'
echo "$STATS_OUT" | grep -q '"last_60s"'
echo "$STATS_OUT" | grep -q '"captured"'

# two METRICS polls: both must parse as Prometheus text exposition, and
# every counter must be monotonic between them
"$CLIENT" --port "$PORT" --metrics > "$ART/metrics_1.txt"
"$CLIENT" --port "$PORT" "$ANALYZE_SQL" >/dev/null
"$CLIENT" --port "$PORT" --metrics > "$ART/metrics_2.txt"

python3 - "$ART/metrics_1.txt" "$ART/metrics_2.txt" <<'PY'
import sys

def parse(path):
    samples, types = {}, {}
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                assert len(line.split(None, 3)) == 4, f"{path}:{lineno}: bad HELP"
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                assert len(parts) == 4, f"{path}:{lineno}: bad TYPE"
                assert parts[3] in ("counter", "gauge", "histogram"), \
                    f"{path}:{lineno}: unknown type {parts[3]}"
                types[parts[2]] = parts[3]
                continue
            assert not line.startswith("#"), f"{path}:{lineno}: stray comment"
            key, _, value = line.rpartition(" ")
            assert key, f"{path}:{lineno}: no sample name"
            float(value)  # must parse
            name = key.split("{", 1)[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base.removesuffix(suffix) in types:
                    base = base.removesuffix(suffix)
            assert base in types, f"{path}:{lineno}: sample {name} has no TYPE"
            samples[key] = (base, float(value))
    assert samples, f"{path}: no samples at all"
    return samples, types

s1, t1 = parse(sys.argv[1])
s2, t2 = parse(sys.argv[2])
for required in ("mmdb_requests_total", "mmdb_uptime_seconds",
                 "mmdb_captured_statements_total",
                 "mmdb_request_latency_seconds"):
    assert required in t2, f"missing metric family {required}"
for key, (base, v1) in s1.items():
    if t1.get(base) == "counter" and key in s2:
        v2 = s2[key][1]
        assert v2 >= v1, f"counter {key} went backwards: {v1} -> {v2}"
# the second poll saw more requests than the first
r1 = s1["mmdb_requests_total"][1]
r2 = s2["mmdb_requests_total"][1]
assert r2 > r1, f"mmdb_requests_total did not advance: {r1} -> {r2}"
print(f"prometheus output OK: {len(s2)} samples, {len(t2)} families")
PY

# --watch renders at least one deltas line without erroring
"$CLIENT" --port "$PORT" --watch --interval 0.2 --count 2 | tee "$ART/watch.txt"
grep -q 'qps' "$ART/watch.txt"

# stop the capture server; the capture must be non-empty JSONL
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[[ -s "$CAPTURE" ]]
head -1 "$CAPTURE" | grep -q '^{'
grep -q '"sql"' "$CAPTURE"
CAPTURED_LINES=$(wc -l < "$CAPTURE")
echo "captured $CAPTURED_LINES statements"

# the capture replays cleanly against a fresh server (same config:
# tracing changes EXPLAIN ANALYZE's operator rows, so replay fidelity
# needs the flags the capture ran under)
MMDB_REPLAY_PORT=$((PORT + 1)) scripts/replay.sh "$CAPTURE" --trace \
  | tee "$ART/replay.txt"
grep -q 'replay clean' "$ART/replay.txt"

echo "observability smoke test passed (artifacts in $ART)"
