#!/usr/bin/env bash
# Re-execute a workload capture (mmdb_server --capture FILE) against a
# fresh server and report behavioral drift: exits non-zero when any
# statement's result-row count or ok/error outcome differs from what was
# captured.  Boots its own empty server on an ephemeral-ish port, so the
# capture must be self-contained (include its DDL).
#
#   dune build && scripts/replay.sh CAPTURE.jsonl [extra mmdb_server flags...]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: scripts/replay.sh CAPTURE.jsonl [mmdb_server flags...]" >&2
  exit 2
fi
CAPTURE="$1"
shift

if [[ ! -r "$CAPTURE" ]]; then
  echo "replay: cannot read capture file $CAPTURE" >&2
  exit 2
fi

PORT="${MMDB_REPLAY_PORT:-7479}"
SERVER=_build/default/bin/mmdb_server.exe
CLIENT=_build/default/bin/mmdb_client.exe
LOG="$(mktemp)"

cleanup() {
  if [[ -n "${SERVER_PID:-}" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$LOG"
}
trap cleanup EXIT

"$SERVER" --port "$PORT" "$@" >"$LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if "$CLIENT" --port "$PORT" --ping >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$CLIENT" --port "$PORT" --ping >/dev/null

if "$CLIENT" --port "$PORT" --replay "$CAPTURE"; then
  STATUS=0
else
  STATUS=$?
fi

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

exit "$STATUS"
