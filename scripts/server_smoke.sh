#!/usr/bin/env bash
# End-to-end smoke test of the network server: boots mmdb_server (with
# tracing and an everything-is-slow slow-query log), waits for it to
# answer PING, runs a scripted session, checks that a failing script
# exits non-zero, exercises EXPLAIN ANALYZE and STATS over the wire,
# checks the slow log, and shuts the server down gracefully.  Used by CI
# (server-smoke job); runnable locally:
#
#   dune build && scripts/server_smoke.sh
set -euo pipefail

PORT="${MMDB_SMOKE_PORT:-7478}"
SERVER=_build/default/bin/mmdb_server.exe
CLIENT=_build/default/bin/mmdb_client.exe
LOG="$(mktemp)"
SLOWLOG="$(mktemp)"
ANALYZE_SQL="$(mktemp --suffix=.sql)"

cleanup() {
  if [[ -n "${SERVER_PID:-}" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$LOG" "$SLOWLOG" "$ANALYZE_SQL"
}
trap cleanup EXIT

"$SERVER" --port "$PORT" --slow-log "$SLOWLOG" --slow-ms 0 >"$LOG" 2>&1 &
SERVER_PID=$!

# wait for the server to answer
for _ in $(seq 1 100); do
  if "$CLIENT" --port "$PORT" --ping >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$CLIENT" --port "$PORT" --ping

# a full scripted session must succeed
"$CLIENT" --port "$PORT" examples/server_smoke.sql

# a failing script must exit non-zero and stop at the first error
if "$CLIENT" --port "$PORT" examples/server_smoke_bad.sql 2>/dev/null; then
  echo "FAIL: bad script did not exit non-zero" >&2
  exit 1
fi

# EXPLAIN ANALYZE over the wire: per-operator rows (Value.pp quotes the
# strings, hence \"...\") with the paper's counters and a total row
cat > "$ANALYZE_SQL" <<'SQL'
EXPLAIN ANALYZE SELECT Employee.Name, Department.Name
  FROM Employee JOIN Department ON Dept = Id;
SQL
ANALYZE_OUT="$("$CLIENT" --port "$PORT" "$ANALYZE_SQL")"
echo "$ANALYZE_OUT" | grep -q 'comparisons'
echo "$ANALYZE_OUT" | grep -q 'ptr_derefs'
# nested operators are indented inside the quoted cell: match the tail
echo "$ANALYZE_OUT" | grep -q '"query"'
echo "$ANALYZE_OUT" | grep -q 'join"'
echo "$ANALYZE_OUT" | grep -q '"total"'

# STATS answers machine-readable JSON with the per-operator aggregates
STATS_OUT="$("$CLIENT" --port "$PORT" --stats)"
echo "$STATS_OUT" | grep -q '"requests"'
echo "$STATS_OUT" | grep -q '"by_kind"'
echo "$STATS_OUT" | grep -q '"operators"'
echo "$STATS_OUT" | grep -q '"revision"'

# --status pretty-prints the same payload
"$CLIENT" --port "$PORT" --status | grep -q 'uptime_s='
"$CLIENT" --port "$PORT" --status | grep -q 'operators:'

# the 0ms threshold made every query slow: JSONL lines with trace trees
grep -q '"trace"' "$SLOWLOG"
grep -q '"elapsed_ms"' "$SLOWLOG"
head -1 "$SLOWLOG" | grep -q '^{'

# graceful shutdown drains and reports final metrics
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
grep -q "final metrics" "$LOG"
grep -q "uptime=" "$LOG"

echo "server smoke test passed"
