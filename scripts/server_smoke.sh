#!/usr/bin/env bash
# End-to-end smoke test of the network server: boots mmdb_server, waits
# for it to answer PING, runs a scripted session, checks that a failing
# script exits non-zero, dumps STATUS, and shuts the server down
# gracefully.  Used by CI (server-smoke job); runnable locally:
#
#   dune build && scripts/server_smoke.sh
set -euo pipefail

PORT="${MMDB_SMOKE_PORT:-7478}"
SERVER=_build/default/bin/mmdb_server.exe
CLIENT=_build/default/bin/mmdb_client.exe
LOG="$(mktemp)"

cleanup() {
  if [[ -n "${SERVER_PID:-}" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$LOG"
}
trap cleanup EXIT

"$SERVER" --port "$PORT" >"$LOG" 2>&1 &
SERVER_PID=$!

# wait for the server to answer
for _ in $(seq 1 100); do
  if "$CLIENT" --port "$PORT" --ping >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$CLIENT" --port "$PORT" --ping

# a full scripted session must succeed
"$CLIENT" --port "$PORT" examples/server_smoke.sql

# a failing script must exit non-zero and stop at the first error
if "$CLIENT" --port "$PORT" examples/server_smoke_bad.sql 2>/dev/null; then
  echo "FAIL: bad script did not exit non-zero" >&2
  exit 1
fi

# metrics answer and count the traffic above
"$CLIENT" --port "$PORT" --status | grep -q "requests:"

# graceful shutdown drains and reports final metrics
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
grep -q "final metrics" "$LOG"

echo "server smoke test passed"
