(* Batched-execution equivalence suite (DESIGN.md "Batched execution").

   The vectorized operator kernels must be observationally equivalent to
   the paper-faithful tuple-at-a-time paths: the same multiset of result
   tuples AND the same §3.1 operation-count totals — the batched kernels
   bump the counters as-if per logical operation, so equality is exact,
   not approximate — across batch sizes {1, 16, 256} and pool sizes
   {1, 4} on randomized workloads.  The sort kernel is pinned to the
   paper's quicksort wherever strict counter equality is asserted (the
   DPG kernel is a deliberate counter divergence, tested separately for
   correctness).  MVCC paths (where the batched scan re-enables
   parallelism that tuple-at-a-time execution cannot have) are checked
   by multiset against the sequential snapshot reference, plus a
   visibility check with a concurrent writer.  The skew-robust
   partitioned join is driven over a 50%%-hot-key build side and must
   produce the sequential answer while taking at least one
   role-reversal. *)

open Mmdb_util
open Mmdb_storage
open Mmdb_core

let batch_sizes = [ 1; 16; 256 ]
let pool_sizes = [ 1; 4 ]

let multiset tl =
  List.sort compare (List.map Array.to_list (Temp_list.materialize tl))

let with_pool size f =
  let pool = Domain_pool.create ~size () in
  Fun.protect ~finally:(fun () -> Domain_pool.stop pool) (fun () -> f pool)

let with_batch ~enabled ~size f =
  let st = Batch.stats () in
  Batch.configure ~enabled ~size;
  Fun.protect
    ~finally:(fun () ->
      Batch.configure ~enabled:st.Batch.st_enabled ~size:st.Batch.st_size)
    f

(* Strict counter-equality tests must not see the DPG kernel: force the
   paper's quicksort for the duration. *)
let with_qsort f =
  let saved = Qsort.mode () in
  Qsort.set_mode (Qsort.Force Qsort.Quicksort);
  Fun.protect ~finally:(fun () -> Qsort.set_mode saved) f

let counted f =
  Counters.reset ();
  Counters.with_counters f

let check_counters name (a : Counters.snapshot) (b : Counters.snapshot) =
  if a <> b then
    Alcotest.failf
      "%s: counters diverge\n\
      \  scalar:  cmp=%d moves=%d hash=%d derefs=%d allocs=%d\n\
      \  batched: cmp=%d moves=%d hash=%d derefs=%d allocs=%d"
      name a.Counters.comparisons a.Counters.data_moves a.Counters.hash_calls
      a.Counters.ptr_derefs a.Counters.node_allocs b.Counters.comparisons
      b.Counters.data_moves b.Counters.hash_calls b.Counters.ptr_derefs
      b.Counters.node_allocs

let spec n dup = { Workload.cardinality = n; dup_pct = dup; dup_stddev = 0.8 }

let make_pair ?(n = 6_000) ?(dup = 40.0) ~seed () =
  let rng = Rng.create ~seed () in
  Workload.relation_pair ~with_ttree:false rng ~outer:(spec n dup)
    ~inner:(spec n dup) ~semijoin_sel:80.0 ()

(* --- batch production ---------------------------------------------------- *)

let test_iter_batches () =
  let rng = Rng.create ~seed:7 () in
  let r = Workload.load ~name:"B" (Workload.column rng ~spec:(spec 1_000 30.0)) in
  (* the scalar reference order and key column values *)
  let expect = ref [] in
  Relation.iter r (fun t -> expect := Tuple.get t Workload.jcol :: !expect);
  let expect = List.rev !expect in
  let st0 = Batch.stats () in
  let got = ref [] in
  Relation.iter_batches ~key_col:Workload.jcol ~size:64 r (fun b ->
      Alcotest.(check bool) "batch within capacity" true (b.Batch.n <= 64);
      for i = 0 to b.Batch.n - 1 do
        (* key slice matches the tuple it is extracted from *)
        Alcotest.(check bool) "key slice consistent" true
          (Value.equal b.Batch.keys.(i) (Tuple.get b.Batch.tuples.(i) Workload.jcol));
        got := b.Batch.keys.(i) :: !got
      done);
  let got = List.rev !got in
  Alcotest.(check int) "every tuple batched once" (List.length expect)
    (List.length got);
  Alcotest.(check bool) "scan order preserved" true (got = expect);
  let st1 = Batch.stats () in
  Alcotest.(check bool) "batch production counted" true
    (st1.Batch.st_batches - st0.Batch.st_batches >= 1_000 / 64
    && st1.Batch.st_rows - st0.Batch.st_rows = 1_000)

let test_bulk_appends () =
  let r, _ = make_pair ~n:500 ~seed:8 () in
  let desc = Descriptor.of_schema (Relation.schema r) in
  let tuples = ref [] in
  Relation.iter r (fun t -> tuples := t :: !tuples);
  let tuples = Array.of_list (List.rev !tuples) in
  let n = Array.length tuples in
  (* reference: one append per tuple *)
  let one = Temp_list.create desc in
  Array.iter (fun t -> Temp_list.append one [| t |]) tuples;
  (* bulk single-source append *)
  let bulk = Temp_list.create desc in
  Temp_list.append_n bulk tuples n;
  Alcotest.(check int) "append_n length" n (Temp_list.length bulk);
  Alcotest.(check bool) "append_n contents" true
    (Temp_list.materialize bulk = Temp_list.materialize one);
  (* bulk entry append *)
  let entries = Array.map (fun t -> [| t |]) tuples in
  let many = Temp_list.create desc in
  Temp_list.append_many many entries n;
  Alcotest.(check bool) "append_many contents" true
    (Temp_list.materialize many = Temp_list.materialize one);
  (* bulk appends charge the per-query tuple budget identically *)
  let used_one =
    Temp_list.with_budget ~limit:(2 * n) (fun () ->
        let t = Temp_list.create desc in
        Array.iter (fun tu -> Temp_list.append t [| tu |]) tuples;
        Option.get (Temp_list.budget_used ()))
  in
  let used_bulk =
    Temp_list.with_budget ~limit:(2 * n) (fun () ->
        let t = Temp_list.create desc in
        Temp_list.append_n t tuples n;
        Option.get (Temp_list.budget_used ()))
  in
  Alcotest.(check int) "budget charges match" used_one used_bulk;
  (* and still enforce the quota *)
  let tripped =
    try
      Temp_list.with_budget ~limit:(n / 2) (fun () ->
          let t = Temp_list.create desc in
          Temp_list.append_n t tuples n;
          false)
    with Temp_list.Quota_exceeded _ -> true
  in
  Alcotest.(check bool) "bulk append trips the quota" true tripped

(* --- DPG sort kernel ----------------------------------------------------- *)

let test_sort_dpg () =
  let rng = Rng.create ~seed:9 () in
  List.iter
    (fun (n, run) ->
      let a = Array.init n (fun _ -> Rng.int rng 1_000) in
      let expect = Array.copy a in
      Array.sort compare expect;
      let c =
        counted (fun () -> Qsort.sort_dpg ~run ~cmp:compare a) |> snd
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d run=%d sorted" n run)
        true (a = expect);
      Alcotest.(check bool) "operations tallied" true
        (c.Counters.comparisons > 0 && c.Counters.data_moves > 0))
    [ (100, 4096); (1_000, 64); (10_000, 4096); (10_000, 256) ]

let test_kernel_choice () =
  let saved = Qsort.mode () in
  Fun.protect ~finally:(fun () -> Qsort.set_mode saved) @@ fun () ->
  Qsort.set_mode Qsort.Auto;
  Alcotest.(check bool) "auto, small, batched -> qsort" true
    (Qsort.choose ~n:100 ~batched:true = Qsort.Quicksort);
  Alcotest.(check bool) "auto, large, batched -> dpg" true
    (Qsort.choose ~n:100_000 ~batched:true = Qsort.Dpg);
  Alcotest.(check bool) "auto, large, scalar ablation stays qsort" true
    (Qsort.choose ~n:100_000 ~batched:false = Qsort.Quicksort);
  Qsort.set_mode (Qsort.Force Qsort.Dpg);
  Alcotest.(check bool) "forced dpg wins" true
    (Qsort.choose ~n:10 ~batched:false = Qsort.Dpg)

(* The two kernels must agree on the answer (counters deliberately
   differ): same sorted multiset through a sort-merge join. *)
let test_sort_kernel_agreement () =
  let r1, r2 = make_pair ~n:5_000 ~seed:10 () in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let saved = Qsort.mode () in
  Fun.protect ~finally:(fun () -> Qsort.set_mode saved) @@ fun () ->
  with_batch ~enabled:true ~size:256 @@ fun () ->
  Qsort.set_mode (Qsort.Force Qsort.Quicksort);
  let qs = multiset (Join.sort_merge ~outer ~inner ()) in
  Qsort.set_mode (Qsort.Force Qsort.Dpg);
  let dpg = multiset (Join.sort_merge ~outer ~inner ()) in
  Alcotest.(check bool) "join produced pairs" true (List.length qs > 0);
  Alcotest.(check bool) "kernels agree" true (qs = dpg)

(* --- batched vs tuple-at-a-time operator equivalence --------------------- *)

(* Run [f] both ways at one pool size and require identical multisets and
   identical counter totals. *)
let check_equivalence ~name ~pool_size f =
  with_qsort @@ fun () ->
  let scalar, scalar_c =
    with_batch ~enabled:false ~size:Batch.default_size (fun () ->
        with_pool pool_size (fun pool -> counted (fun () -> f pool)))
  in
  let scalar_rows = multiset scalar in
  Alcotest.(check bool) (name ^ ": reference non-empty") true
    (List.length scalar_rows > 0);
  List.iter
    (fun bs ->
      let batched, batched_c =
        with_batch ~enabled:true ~size:bs (fun () ->
            with_pool pool_size (fun pool -> counted (fun () -> f pool)))
      in
      let label = Printf.sprintf "%s (batch %d, pool %d)" name bs pool_size in
      Alcotest.(check bool) (label ^ ": same multiset") true
        (multiset batched = scalar_rows);
      check_counters label scalar_c batched_c)
    batch_sizes

let test_scan_equivalence () =
  let r1, _ = make_pair ~seed:201 () in
  let predicates =
    [
      Select.Between (Workload.jcol, Value.Int 0, Value.Int 500_000_000);
      Select.Filter
        (fun tup ->
          match Tuple.get tup Workload.seq_col with
          | Value.Int s -> s mod 3 <> 0
          | _ -> false);
    ]
  in
  List.iter
    (fun pool_size ->
      check_equivalence ~name:"scan" ~pool_size (fun pool ->
          Select.run ~pool r1 ~path:Select.Sequential_scan ~predicates))
    pool_sizes;
  (* an Eq head exercises the key-slice fast path *)
  let some_key =
    let k = ref Value.Null in
    Relation.iter r1 (fun t -> if !k = Value.Null then k := Tuple.get t Workload.jcol);
    !k
  in
  check_equivalence ~name:"scan-eq" ~pool_size:1 (fun pool ->
      Select.run ~pool r1 ~path:Select.Sequential_scan
        ~predicates:[ Select.Eq (Workload.jcol, some_key) ])

let test_hash_join_equivalence () =
  let r1, r2 = make_pair ~seed:202 () in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let rp0, rv0 = Join.skew_stats () in
  List.iter
    (fun pool_size ->
      check_equivalence ~name:"hash join" ~pool_size (fun pool ->
          Join.hash_join ~pool ~outer ~inner ()))
    pool_sizes;
  (* near-uniform keys must never trip the skew machinery *)
  let rp1, rv1 = Join.skew_stats () in
  Alcotest.(check int) "no repartitions on uniform keys" rp0 rp1;
  Alcotest.(check int) "no role reversals on uniform keys" rv0 rv1

let test_hash_join_filter_equivalence () =
  let r1, r2 = make_pair ~n:3_000 ~seed:203 () in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let outer_filter t =
    match Tuple.get t Workload.seq_col with
    | Value.Int s -> s mod 2 = 0
    | _ -> false
  in
  List.iter
    (fun pool_size ->
      check_equivalence ~name:"filtered hash join" ~pool_size (fun pool ->
          Join.hash_join ~pool ~outer_filter ~outer ~inner ()))
    pool_sizes

let test_sort_merge_equivalence () =
  let r1, r2 = make_pair ~seed:204 () in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  List.iter
    (fun pool_size ->
      check_equivalence ~name:"sort merge" ~pool_size (fun pool ->
          Join.sort_merge ~pool ~outer ~inner ()))
    pool_sizes

let test_project_aggregate_equivalence () =
  let r1, _ = make_pair ~seed:205 ~dup:70.0 () in
  let input = Temp_list.of_relation r1 in
  let labels = Descriptor.labels (Temp_list.descriptor input) in
  let jcol_label = List.nth labels Workload.jcol in
  List.iter
    (fun method_ ->
      check_equivalence
        ~name:("project " ^ Project.method_name method_)
        ~pool_size:1
        (fun pool -> Project.run ~pool method_ input [ jcol_label ]))
    [ Project.Sort_scan; Project.Hashing ];
  (* aggregation: same groups, same counters, batched drive vs iter *)
  let run_agg () =
    Aggregate.group input ~by:[ jcol_label ]
      ~aggs:[ Aggregate.Count; Aggregate.Min jcol_label ]
  in
  let scalar, scalar_c =
    with_batch ~enabled:false ~size:256 (fun () -> counted run_agg)
  in
  List.iter
    (fun bs ->
      let batched, batched_c =
        with_batch ~enabled:true ~size:bs (fun () -> counted run_agg)
      in
      Alcotest.(check bool)
        (Printf.sprintf "aggregate (batch %d): same rows" bs)
        true
        (List.sort compare (List.map Array.to_list batched.Aggregate.rows)
        = List.sort compare (List.map Array.to_list scalar.Aggregate.rows));
      check_counters (Printf.sprintf "aggregate (batch %d)" bs) scalar_c
        batched_c)
    batch_sizes

(* --- MVCC x domains: the PR 6 regression fix ----------------------------- *)

let with_mvcc f =
  let was = Version_store.enabled () in
  Version_store.set_enabled true;
  Fun.protect ~finally:(fun () -> Version_store.set_enabled was) f

let on_writer_domain f = Domain.join (Domain.spawn f)

let test_mvcc_batched_scan () =
  with_mvcc @@ fun () ->
  let r1, _ = make_pair ~seed:301 () in
  Relation.ensure_view r1;
  let predicates =
    [ Select.Between (Workload.jcol, Value.Int 0, Value.Int 500_000_000) ]
  in
  Version_store.with_snapshot (fun _ ->
      (* sequential snapshot reference, tuple at a time *)
      let reference =
        with_batch ~enabled:false ~size:256 (fun () ->
            multiset (Select.run r1 ~path:Select.Sequential_scan ~predicates))
      in
      Alcotest.(check bool) "reference non-empty" true
        (List.length reference > 0);
      List.iter
        (fun bs ->
          with_batch ~enabled:true ~size:bs (fun () ->
              with_pool 4 (fun pool ->
                  let rows =
                    multiset
                      (Select.run ~pool r1 ~path:Select.Sequential_scan
                         ~predicates)
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf "batched parallel snapshot scan (batch %d)"
                       bs)
                    true (rows = reference))))
        batch_sizes)

(* The batched parallel scan must honour visibility: a concurrent writer
   publishing after the snapshot is taken stays invisible to it. *)
let test_mvcc_batched_scan_visibility () =
  with_mvcc @@ fun () ->
  let rng = Rng.create ~seed:302 () in
  let r = Workload.load ~name:"V" (Workload.column rng ~spec:(spec 2_000 0.0)) in
  Relation.ensure_view r;
  let all = [ Select.Between (Workload.seq_col, Value.Int 0, Value.Int max_int) ] in
  with_batch ~enabled:true ~size:256 @@ fun () ->
  with_pool 4 @@ fun pool ->
  Version_store.with_snapshot (fun _ ->
      let before =
        multiset (Select.run ~pool r ~path:Select.Sequential_scan ~predicates:all)
      in
      Alcotest.(check int) "snapshot sees the full load" 2_000
        (List.length before);
      on_writer_domain (fun () ->
          Version_store.with_write (fun () ->
              for i = 0 to 99 do
                match
                  Relation.insert r
                    [| Value.Int (10_000 + i); Value.Int (10_000 + i) |]
                with
                | Ok _ -> ()
                | Error e -> Alcotest.fail e
              done));
      let after =
        multiset (Select.run ~pool r ~path:Select.Sequential_scan ~predicates:all)
      in
      Alcotest.(check bool) "post-snapshot inserts invisible" true
        (after = before));
  (* outside the snapshot the new rows appear *)
  let now =
    multiset (Select.run ~pool r ~path:Select.Sequential_scan ~predicates:all)
  in
  Alcotest.(check int) "fresh scan sees the inserts" 2_100 (List.length now)

let test_mvcc_batched_join () =
  with_mvcc @@ fun () ->
  let r1, r2 = make_pair ~seed:303 () in
  Relation.ensure_view r1;
  Relation.ensure_view r2;
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  Version_store.with_snapshot (fun _ ->
      let reference =
        with_batch ~enabled:false ~size:256 (fun () ->
            with_pool 4 (fun pool ->
                (* tuple-at-a-time: Join.run must still drop the pool *)
                multiset (Join.run ~pool Join.Hash_join ~outer ~inner)))
      in
      Alcotest.(check bool) "reference non-empty" true
        (List.length reference > 0);
      List.iter
        (fun bs ->
          with_batch ~enabled:true ~size:bs (fun () ->
              with_pool 4 (fun pool ->
                  let rows =
                    multiset (Join.run ~pool Join.Hash_join ~outer ~inner)
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "batched partitioned join under snapshot (batch %d)" bs)
                    true (rows = reference))))
        [ 16; 256 ])

(* --- skew robustness ----------------------------------------------------- *)

let load_col ~name col = Workload.load ~name col

let test_skewed_join () =
  (* inner: one hot key carrying 50% of the build side; outer: a few hot
     probes plus uniform probes over the inner's distinct tail *)
  let hot = 42 in
  let inner_col =
    Array.init 6_000 (fun i -> if i < 3_000 then hot else 1_000_000 + i)
  in
  let outer_col =
    Array.init 6_000 (fun i ->
        if i < 10 then hot else 1_000_000 + 3_000 + (i mod 3_000))
  in
  let r_inner = load_col ~name:"SkewInner" inner_col in
  let r_outer = load_col ~name:"SkewOuter" outer_col in
  let outer = { Join.rel = r_outer; col = Workload.jcol } in
  let inner = { Join.rel = r_inner; col = Workload.jcol } in
  let reference =
    with_batch ~enabled:false ~size:256 (fun () ->
        multiset (Join.hash_join ~outer ~inner ()))
  in
  Alcotest.(check int) "hot pairs plus uniform matches"
    ((10 * 3_000) + 6_000 - 10)
    (List.length reference);
  with_batch ~enabled:true ~size:256 @@ fun () ->
  with_pool 4 @@ fun pool ->
  let rp0, rv0 = Join.skew_stats () in
  let rows = multiset (Join.hash_join ~pool ~outer ~inner ()) in
  let rp1, rv1 = Join.skew_stats () in
  Alcotest.(check bool) "skewed join answer matches sequential" true
    (rows = reference);
  (* the hot partition exceeds its working-set bound and the probe side
     is smaller: the join must have reversed roles at least once *)
  Alcotest.(check bool)
    (Printf.sprintf "role reversals taken (%d)" (rv1 - rv0))
    true
    (rv1 - rv0 >= 1);
  ignore rp0;
  ignore rp1

let () =
  Alcotest.run "mmdb_batch"
    [
      ( "batch",
        [
          Alcotest.test_case "iter_batches coverage" `Quick test_iter_batches;
          Alcotest.test_case "bulk appends" `Quick test_bulk_appends;
        ] );
      ( "sort",
        [
          Alcotest.test_case "dpg kernel sorts" `Quick test_sort_dpg;
          Alcotest.test_case "kernel choice" `Quick test_kernel_choice;
          Alcotest.test_case "kernels agree" `Quick test_sort_kernel_agreement;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "scan" `Quick test_scan_equivalence;
          Alcotest.test_case "hash join" `Quick test_hash_join_equivalence;
          Alcotest.test_case "filtered hash join" `Quick
            test_hash_join_filter_equivalence;
          Alcotest.test_case "sort merge" `Quick test_sort_merge_equivalence;
          Alcotest.test_case "project + aggregate" `Quick
            test_project_aggregate_equivalence;
        ] );
      ( "mvcc",
        [
          Alcotest.test_case "batched parallel snapshot scan" `Quick
            test_mvcc_batched_scan;
          Alcotest.test_case "snapshot visibility under parallel scan" `Quick
            test_mvcc_batched_scan_visibility;
          Alcotest.test_case "batched partitioned join under snapshot" `Quick
            test_mvcc_batched_join;
        ] );
      ( "skew",
        [ Alcotest.test_case "hot-key join" `Quick test_skewed_join ] );
    ]
