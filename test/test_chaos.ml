(* Chaos torture suite: a load generator drives the server while network
   faults are armed on the wire and the whole process is then "kill -9"ed
   ([Server.crash]) and brought back through [Recovery.recover].

   Invariants checked per seed:
   - zero lost committed writes: every transaction whose COMMIT was
     acknowledged is present after recovery, both rows of it;
   - no resurrections: a key is present only if its COMMIT was at least
     sent (an unacknowledged commit may or may not have landed — both
     are legal, duplicates are not);
   - atomicity / serial-equivalence: every transaction writes a PAIR of
     rows, and no read — during the run or after recovery — ever sees
     one half without the other;
   - the retrying client never re-executes a non-idempotent statement:
     a transactional write whose COMMIT fate is unknown is abandoned,
     not re-sent (the writer loop below encodes exactly that rule).

   Seed count: MMDB_CHAOS_SEEDS (default 20). *)

open Mmdb_storage
open Mmdb_net
module Fault = Mmdb_txn.Fault
module Txn = Mmdb_txn.Txn
module Recovery = Mmdb_txn.Recovery
module Db = Mmdb_core.Db
module Rng = Mmdb_util.Rng

let n_seeds =
  match Sys.getenv_opt "MMDB_CHAOS_SEEDS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 20)
  | None -> 20

let pair = 100_000 (* second row of every transaction: key + pair *)
let n_writers = 3
let writes_per = 6

(* Mutex-guarded fact tables shared by the load generator threads. *)
type journal = {
  jm : Mutex.t;
  acked : (int, unit) Hashtbl.t;  (** COMMIT acknowledged *)
  commit_sent : (int, unit) Hashtbl.t;  (** COMMIT left the client *)
  mutable read_violations : string list;  (** anomalies seen by readers *)
}

let journal () =
  {
    jm = Mutex.create ();
    acked = Hashtbl.create 64;
    commit_sent = Hashtbl.create 64;
    read_violations = [];
  }

let noting j f =
  Mutex.lock j.jm;
  Fun.protect ~finally:(fun () -> Mutex.unlock j.jm) f

let connect_quiet port =
  Client.connect ~host:"127.0.0.1" ~port ()

(* One transactional write of the (k, k+pair) row pair.

   Outcome lattice:
   - [`Committed]    COMMIT answered Ok — must survive recovery;
   - [`Not_committed] a reply-level failure before COMMIT, or transport
                      loss before COMMIT was sent: the open transaction
                      dies with the connection (deferred updates — no
                      partial effects), so the key is retriable;
   - [`Unknown]      transport loss after COMMIT was sent: re-sending
                      would risk a duplicate execution, so the writer
                      abandons the key (recorded in [commit_sent]). *)
let write_pair j c k =
  let v = k + 1 in
  let step sql =
    match Client.query c sql with
    | Ok (Protocol.Error (code, m)) -> `Rejected (code, m)
    | Ok _ -> `Ok
    | Error m -> `Transport m
  in
  match step "BEGIN;" with
  | `Transport _ -> `Not_committed
  | `Rejected _ -> `Not_committed
  | `Ok -> (
      let ins k' =
        step (Printf.sprintf "INSERT INTO KV VALUES (%d, %d);" k' v)
      in
      match ins k with
      | `Transport _ -> `Not_committed
      | `Rejected _ ->
          ignore (Client.query c "ROLLBACK;");
          `Not_committed
      | `Ok -> (
          match ins (k + pair) with
          | `Transport _ -> `Not_committed
          | `Rejected _ ->
              ignore (Client.query c "ROLLBACK;");
              `Not_committed
          | `Ok -> (
              noting j (fun () -> Hashtbl.replace j.commit_sent k ());
              match step "COMMIT;" with
              | `Ok ->
                  noting j (fun () -> Hashtbl.replace j.acked k ());
                  `Committed
              | `Rejected _ ->
                  (* the commit was refused: nothing applied *)
                  ignore (Client.query c "ROLLBACK;");
                  `Not_committed
              | `Transport _ -> `Unknown)))

let writer j port wid () =
  let c = ref None in
  let ensure_conn () =
    match !c with
    | Some conn -> Some conn
    | None -> (
        match connect_quiet port with
        | Ok conn ->
            c := Some conn;
            Some conn
        | Error _ -> None)
  in
  let drop_conn () =
    (match !c with Some conn -> Client.close conn | None -> ());
    c := None
  in
  (try
     for i = 0 to writes_per - 1 do
       let k = (wid * 1000) + i in
       (* bounded retries: conflicts roll back and go again; transport
          loss before COMMIT reconnects and goes again; an unknown
          COMMIT abandons the key *)
       let rec attempt tries =
         if tries > 0 then
           match ensure_conn () with
           | None -> () (* server gone: give up on this key *)
           | Some conn -> (
               match write_pair j conn k with
               | `Committed | `Unknown -> ()
               | `Not_committed ->
                   (* reply-level rejection keeps the connection; a
                      transport fault may have poisoned it — cheap to
                      just probe with a ping *)
                   (match Client.ping conn with
                   | Ok () -> ()
                   | Error _ -> drop_conn ());
                   Thread.delay 0.004;
                   attempt (tries - 1))
       in
       attempt 60
     done
   with _ -> ());
  match !c with Some conn -> Client.close conn | None -> ()

(* Readers assert pair atomicity on every successful snapshot: a read
   must never see one half of a transaction.  Runs until the server
   dies or [stop] flips. *)
let reader j port stop () =
  match connect_quiet port with
  | Error _ -> ()
  | Ok c ->
      let policy =
        Client.retry_policy ~max_attempts:4 ~base_delay:0.005 ~max_delay:0.05
          ~seed:99 ()
      in
      (try
         while not (Atomic.get stop) do
           (match Client.query_retry c ~policy "SELECT K, V FROM KV;" with
           | Ok (Protocol.Results { rows; _ }) ->
               let keys = Hashtbl.create 32 in
               List.iter
                 (fun row ->
                   match row.(0) with
                   | Value.Int k -> Hashtbl.replace keys k ()
                   | _ -> ())
                 rows;
               Hashtbl.iter
                 (fun k () ->
                   if k < pair && not (Hashtbl.mem keys (k + pair)) then
                     noting j (fun () ->
                         j.read_violations <-
                           Printf.sprintf "read saw %d without %d" k (k + pair)
                           :: j.read_violations))
                 keys
           | Ok _ | Error _ -> Atomic.set stop true);
           Thread.delay 0.005
         done
       with _ -> ());
      Client.close c

let check name b = Alcotest.(check bool) name true b

let run_seed seed =
  let fault = Fault.create ~seed () in
  let rng = Rng.create ~seed ()
  and j = journal () in
  let config =
    {
      Server.default_config with
      Server.port = 0;
      (* no request timeout: a timed-out write would have an unknowable
         fate, and the torture writers only abandon on transport loss *)
      request_timeout = 0.0;
      idle_timeout = 0.0;
      fault;
    }
  in
  let db = Db.create () in
  let mgr = Txn.create_manager () in
  let srv = Server.start ~config ~mgr db in
  let port = Server.port srv in
  (match connect_quiet port with
  | Error m -> Alcotest.fail ("chaos setup connect: " ^ m)
  | Ok c ->
      (match Client.query c "CREATE TABLE KV (K int PRIMARY KEY, V int);" with
      | Ok (Protocol.Message _) -> ()
      | _ -> Alcotest.fail "chaos setup: CREATE TABLE failed");
      ignore (Client.quit c));
  (* arm the wire faults only now, so setup is clean; skips are drawn
     from the seeded stream so every seed damages a different spot *)
  Fault.arm fault ~point:"net.write.reset" ~skip:(5 + Rng.int rng 40) Fault.Corrupt;
  Fault.arm fault ~point:"net.write.torn" ~skip:(5 + Rng.int rng 40) Fault.Corrupt;
  Fault.arm fault ~point:"net.read.reset" ~skip:(5 + Rng.int rng 40) Fault.Corrupt;
  Fault.arm fault ~point:"net.write.delay" ~skip:(Rng.int rng 10) ~count:3
    (Fault.Delay 0.002);
  let stop = Atomic.make false in
  let writers =
    List.init n_writers (fun wid -> Thread.create (writer j port wid) ())
  in
  let rd = Thread.create (reader j port stop) () in
  (* let the load generator run a seed-dependent while, then pull the plug *)
  Thread.delay (0.10 +. (float_of_int (Rng.int rng 250) /. 1000.));
  Server.crash srv;
  Atomic.set stop true;
  List.iter Thread.join writers;
  Thread.join rd;
  (* recover from the dead instance's disk store and log device *)
  let st =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[ "KV" ]
  in
  Recovery.finish_background st;
  let mgr2 = Recovery.manager st in
  let db2 = Db.create () in
  List.iter
    (fun name ->
      match Txn.relation mgr2 name with
      | Some rel -> ignore (Db.add db2 rel)
      | None -> ())
    (Recovery.loaded_relations st);
  (* restart: the recovered state serves reads again *)
  let srv2 =
    Server.start ~config:{ config with Server.fault = Fault.none } ~mgr:mgr2 db2
  in
  let rows =
    match connect_quiet (Server.port srv2) with
    | Error m -> Alcotest.fail ("post-recovery connect: " ^ m)
    | Ok c -> (
        match Client.query c "SELECT K, V FROM KV;" with
        | Ok (Protocol.Results { rows; _ }) ->
            ignore (Client.quit c);
            rows
        | _ -> Alcotest.fail "post-recovery SELECT failed")
  in
  Server.shutdown srv2;
  let present = Hashtbl.create 64 in
  List.iter
    (fun row ->
      match (row.(0), row.(1)) with
      | Value.Int k, Value.Int v ->
          check
            (Printf.sprintf "seed %d: no duplicate key %d" seed k)
            (not (Hashtbl.mem present k));
          Hashtbl.replace present k ();
          let base = if k >= pair then k - pair else k in
          check
            (Printf.sprintf "seed %d: value intact for key %d" seed k)
            (v = base + 1)
      | _ -> Alcotest.fail "non-int row after recovery")
    rows;
  (* zero lost committed writes: both halves of every acked pair *)
  Mutex.lock j.jm;
  let acked = Hashtbl.fold (fun k () l -> k :: l) j.acked [] in
  let sent = Hashtbl.copy j.commit_sent in
  let violations = j.read_violations in
  Mutex.unlock j.jm;
  List.iter
    (fun k ->
      check
        (Printf.sprintf "seed %d: acked key %d survived the crash" seed k)
        (Hashtbl.mem present k);
      check
        (Printf.sprintf "seed %d: acked pair row %d survived the crash" seed
           (k + pair))
        (Hashtbl.mem present (k + pair)))
    acked;
  (* no resurrections: present keys had their COMMIT at least sent *)
  Hashtbl.iter
    (fun k () ->
      let base = if k >= pair then k - pair else k in
      check
        (Printf.sprintf "seed %d: key %d only present if commit was sent" seed
           k)
        (Hashtbl.mem sent base);
      (* atomicity after recovery: both halves or neither *)
      let other = if k >= pair then k - pair else k + pair in
      check
        (Printf.sprintf "seed %d: pair of %d intact after recovery" seed k)
        (Hashtbl.mem present other))
    present;
  check
    (Printf.sprintf "seed %d: reads stayed serial-equivalent" seed)
    (violations = []);
  (* at least some work actually committed under most seeds is not
     guaranteed per-seed (the crash may land early); report coverage *)
  List.length acked

let test_chaos_torture () =
  let total_acked = ref 0 in
  for seed = 1 to n_seeds do
    total_acked := !total_acked + run_seed seed
  done;
  (* across all seeds the generator must have landed real commits,
     otherwise the suite silently degenerated into a no-op *)
  check "chaos suite exercised committed writes" (!total_acked > 0)

let () =
  Alcotest.run "chaos"
    [
      ( "torture",
        [ Alcotest.test_case "crash/recover under wire faults" `Slow
            test_chaos_torture ] );
    ]
