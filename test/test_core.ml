(* Tests for the query-processing core: workload generation, selection
   access paths, all join algorithms (pairwise equivalence on random
   workloads), projection methods, the §4 optimizer rules, and end-to-end
   query execution. *)

open Mmdb_util
open Mmdb_storage
open Mmdb_core

(* --- workload generation (§3.3.1, Graph 3) ------------------------------ *)

let test_workload_cardinality () =
  let rng = Rng.create ~seed:1 () in
  let col = Workload.column rng ~spec:{ cardinality = 500; dup_pct = 0.0; dup_stddev = 0.8 } in
  Alcotest.(check int) "length" 500 (Array.length col);
  let uniq = List.sort_uniq compare (Array.to_list col) in
  Alcotest.(check int) "no duplicates at 0%" 500 (List.length uniq)

let test_workload_duplicates () =
  let rng = Rng.create ~seed:2 () in
  let col =
    Workload.column rng ~spec:{ cardinality = 1000; dup_pct = 60.0; dup_stddev = 0.8 }
  in
  let uniq = List.length (List.sort_uniq compare (Array.to_list col)) in
  Alcotest.(check int) "unique values at 60% dups" 400 uniq

let test_workload_skew_shapes () =
  (* Graph 3: with σ=0.1 a small share of values covers most tuples; with
     σ=0.8 the distribution is near-uniform. *)
  let share_of_top_10pct stddev =
    let rng = Rng.create ~seed:3 () in
    let col =
      Workload.column rng
        ~spec:{ cardinality = 5000; dup_pct = 90.0; dup_stddev = stddev }
    in
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun v ->
        Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
      col;
    let sorted =
      Hashtbl.fold (fun _ c acc -> c :: acc) counts []
      |> List.sort (fun a b -> compare b a)
    in
    let n_vals = List.length sorted in
    let top = List.filteri (fun i _ -> i < max 1 (n_vals / 10)) sorted in
    float_of_int (List.fold_left ( + ) 0 top) /. 5000.0
  in
  let skewed = share_of_top_10pct 0.1 and uniform = share_of_top_10pct 0.8 in
  if skewed <= uniform then
    Alcotest.failf "skewed top-decile share %.2f <= uniform %.2f" skewed uniform;
  if skewed < 0.2 then Alcotest.failf "skew too weak: %.2f" skewed

let test_workload_semijoin_selectivity () =
  let rng = Rng.create ~seed:4 () in
  let check sel =
    let c1, c2 =
      Workload.column_pair rng
        ~outer:{ cardinality = 1000; dup_pct = 0.0; dup_stddev = 0.8 }
        ~inner:{ cardinality = 1000; dup_pct = 0.0; dup_stddev = 0.8 }
        ~semijoin_sel:sel
    in
    let s1 = Hashtbl.create 1024 in
    Array.iter (fun v -> Hashtbl.replace s1 v ()) c1;
    let matching = Array.fold_left (fun acc v -> if Hashtbl.mem s1 v then acc + 1 else acc) 0 c2 in
    float_of_int matching /. float_of_int (Array.length c2) *. 100.0
  in
  let m100 = check 100.0 and m50 = check 50.0 and m0 = check 0.0 in
  Alcotest.(check bool) "sel 100 ~ all match" true (m100 > 99.0);
  Alcotest.(check bool) "sel 50 ~ half match" true (m50 > 40.0 && m50 < 60.0);
  Alcotest.(check bool) "sel 0 ~ none match" true (m0 < 1.0)

let test_workload_load () =
  let rng = Rng.create ~seed:5 () in
  let col = Workload.column rng ~spec:(Workload.uniform_spec ~cardinality:200) in
  let rel = Workload.load ~with_ttree:true ~name:"R" col in
  Alcotest.(check int) "count" 200 (Relation.count rel);
  Alcotest.(check bool) "validates" true (Relation.validate rel = Ok ());
  Alcotest.(check bool) "has tree index on jcol" true
    (Relation.find_index_on ~ordered:true rel ~columns:[| Workload.jcol |] <> None)

(* --- selection (§3.2, §4) ------------------------------------------------ *)

let mk_indexed_relation () =
  let rng = Rng.create ~seed:6 () in
  let col = Array.init 300 (fun i -> i * 2) in
  Rng.shuffle rng col;
  let rel = Workload.load ~with_ttree:true ~name:"S" col in
  (match
     Relation.create_index rel ~idx_name:"jcol_hash" ~columns:[| Workload.jcol |]
       ~structure:Relation.Mod_linear_hash
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  rel

let test_select_paths_agree () =
  let rel = mk_indexed_relation () in
  let pred = Select.Eq (Workload.jcol, Value.Int 100) in
  let count path =
    Temp_list.length (Select.run rel ~path ~predicates:[ pred ])
  in
  Alcotest.(check int) "hash path" 1 (count (Select.Hash_lookup "jcol_hash"));
  Alcotest.(check int) "tree path" 1 (count (Select.Tree_lookup "jcol_tree"));
  Alcotest.(check int) "scan path" 1 (count Select.Sequential_scan);
  let missing = Select.Eq (Workload.jcol, Value.Int 101) in
  Alcotest.(check int) "miss via hash" 0
    (Temp_list.length
       (Select.run rel ~path:(Select.Hash_lookup "jcol_hash") ~predicates:[ missing ]))

let test_select_best_path_ordering () =
  let rel = mk_indexed_relation () in
  (* hash > tree for exact match *)
  (match Select.best_path rel (Select.Eq (Workload.jcol, Value.Int 2)) with
  | Select.Hash_lookup _ -> ()
  | p -> Alcotest.failf "expected hash lookup, got %a" Select.pp_path p);
  (* range can only use the tree *)
  (match
     Select.best_path rel (Select.Between (Workload.jcol, Value.Int 0, Value.Int 10))
   with
  | Select.Tree_lookup _ -> ()
  | p -> Alcotest.failf "expected tree lookup, got %a" Select.pp_path p);
  (* unindexed column: scan *)
  (match Select.best_path rel (Select.Filter (fun _ -> true)) with
  | Select.Sequential_scan -> ()
  | p -> Alcotest.failf "expected scan, got %a" Select.pp_path p)

let test_select_range_and_residual () =
  let rel = mk_indexed_relation () in
  let out =
    Select.select rel
      [
        Select.Between (Workload.jcol, Value.Int 10, Value.Int 30);
        Select.Filter
          (fun t ->
            match Tuple.get t Workload.jcol with
            | Value.Int v -> v mod 4 = 0
            | _ -> false);
      ]
  in
  (* evens in [10,30] divisible by 4: 12,16,20,24,28 *)
  Alcotest.(check int) "range + residual" 5 (Temp_list.length out)

(* --- joins (§3.3) --------------------------------------------------------- *)

let pairs tl =
  let acc = ref [] in
  Temp_list.iter tl (fun e ->
      let v t = match Tuple.get t Workload.seq_col with Value.Int i -> i | _ -> -1 in
      acc := (v e.(0), v e.(1)) :: !acc);
  List.sort compare !acc

let reference_join c1 c2 =
  (* brute-force expected result on the raw columns *)
  let acc = ref [] in
  Array.iteri
    (fun i v1 ->
      Array.iteri (fun j v2 -> if v1 = v2 then acc := (i, j) :: !acc) c2)
    c1;
  List.sort compare !acc

let test_join_methods_agree_simple () =
  let rng = Rng.create ~seed:7 () in
  let c1, c2 =
    Workload.column_pair rng
      ~outer:{ cardinality = 120; dup_pct = 40.0; dup_stddev = 0.4 }
      ~inner:{ cardinality = 80; dup_pct = 30.0; dup_stddev = 0.4 }
      ~semijoin_sel:70.0
  in
  let r1 = Workload.load ~with_ttree:true ~name:"R1" c1 in
  let r2 = Workload.load ~with_ttree:true ~name:"R2" c2 in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let expected = reference_join c1 c2 in
  List.iter
    (fun m ->
      let got = pairs (Join.run m ~outer ~inner) in
      if got <> expected then
        Alcotest.failf "%s disagrees with reference join" (Join.method_name m))
    Join.all_methods

let join_equivalence_property =
  QCheck.Test.make ~count:25 ~name:"all join methods produce the same multiset"
    QCheck.(
      triple (int_range 0 60) (int_range 0 60) (int_range 0 100))
    (fun (n1, n2, sel) ->
      let rng = Rng.create ~seed:(n1 + (61 * n2) + (61 * 61 * sel)) () in
      let c1, c2 =
        if n1 = 0 || n2 = 0 then
          ( Array.init n1 (fun i -> i),
            Array.init n2 (fun i -> i) )
        else
          Workload.column_pair rng
            ~outer:{ cardinality = n1; dup_pct = 50.0; dup_stddev = 0.3 }
            ~inner:{ cardinality = n2; dup_pct = 50.0; dup_stddev = 0.3 }
            ~semijoin_sel:(float_of_int sel)
      in
      let r1 = Workload.load ~with_ttree:true ~name:"R1" c1 in
      let r2 = Workload.load ~with_ttree:true ~name:"R2" c2 in
      let outer = { Join.rel = r1; col = Workload.jcol } in
      let inner = { Join.rel = r2; col = Workload.jcol } in
      let expected = reference_join c1 c2 in
      List.for_all
        (fun m ->
          let got = pairs (Join.run m ~outer ~inner) in
          if got <> expected then
            QCheck.Test.fail_reportf "%s diverges (%d vs %d pairs)"
              (Join.method_name m) (List.length got) (List.length expected)
          else true)
        Join.all_methods)

let test_tree_join_requires_index () =
  let rel1 = Workload.load ~with_ttree:false ~name:"A" [| 1; 2 |] in
  let rel2 = Workload.load ~with_ttree:false ~name:"B" [| 1; 2 |] in
  let outer = { Join.rel = rel1; col = Workload.jcol } in
  let inner = { Join.rel = rel2; col = Workload.jcol } in
  (try
     ignore (Join.tree_join ~outer ~inner ());
     Alcotest.fail "tree join without index succeeded"
   with Invalid_argument _ -> ());
  try
    ignore (Join.tree_merge ~outer ~inner ());
    Alcotest.fail "tree merge without index succeeded"
  with Invalid_argument _ -> ()

let test_join_outer_filter () =
  let r1 = Workload.load ~with_ttree:true ~name:"R1" [| 1; 2; 3; 4 |] in
  let r2 = Workload.load ~with_ttree:true ~name:"R2" [| 2; 3; 5 |] in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let f t = Tuple.get t Workload.jcol <> Value.Int 2 in
  List.iter
    (fun m ->
      let tl = Join.run ~outer_filter:f m ~outer ~inner in
      Alcotest.(check int)
        (Join.method_name m ^ " filtered")
        1 (Temp_list.length tl))
    Join.all_methods

let test_inequality_join () =
  (* outer_key op inner_key over small known columns *)
  let r1 = Workload.load ~with_ttree:true ~name:"A" [| 1; 5; 9 |] in
  let r2 = Workload.load ~with_ttree:true ~name:"B" [| 2; 5; 7 |] in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let count op =
    Temp_list.length (Join.tree_inequality_join ~op ~outer ~inner ())
  in
  (* brute force: pairs (a, b) with a op b *)
  let brute op =
    List.length
      (List.concat_map
         (fun a -> List.filter (fun b -> op a b) [ 2; 5; 7 ])
         [ 1; 5; 9 ])
  in
  Alcotest.(check int) "<" (brute ( < )) (count Join.Lt);
  Alcotest.(check int) "<=" (brute ( <= )) (count Join.Le);
  Alcotest.(check int) ">" (brute ( > )) (count Join.Gt);
  Alcotest.(check int) ">=" (brute ( >= )) (count Join.Ge)

let inequality_join_property =
  QCheck.Test.make ~count:30 ~name:"inequality joins ≡ brute force"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 25) (int_range 0 20))
              (list_of_size (QCheck.Gen.int_range 0 25) (int_range 0 20)))
    (fun (xs, ys) ->
      let r1 = Workload.load ~with_ttree:true ~name:"A" (Array.of_list xs) in
      let r2 = Workload.load ~with_ttree:true ~name:"B" (Array.of_list ys) in
      let outer = { Join.rel = r1; col = Workload.jcol } in
      let inner = { Join.rel = r2; col = Workload.jcol } in
      List.for_all
        (fun (op, f) ->
          let got =
            Temp_list.length (Join.tree_inequality_join ~op ~outer ~inner ())
          in
          let want =
            List.length
              (List.concat_map (fun a -> List.filter (f a) ys) xs)
          in
          if got <> want then
            QCheck.Test.fail_reportf "%s: got %d want %d"
              (Join.inequality_name op) got want
          else true)
        [ (Join.Lt, ( < )); (Join.Le, ( <= )); (Join.Gt, ( > ));
          (Join.Ge, ( >= )) ])

let test_lookup_from () =
  let rel = Workload.load ~with_ttree:true ~name:"L" [| 10; 20; 30; 40 |] in
  let acc = ref [] in
  Relation.lookup_from ~index:"jcol_tree" rel [| Value.Int 25 |] (fun t ->
      match Tuple.get t Workload.jcol with
      | Value.Int v -> acc := v :: !acc
      | _ -> ());
  Alcotest.(check (list int)) "from 25" [ 30; 40 ] (List.rev !acc)

let test_join_operation_counts () =
  (* §3.1 validation: operation counts must match the paper's §3.3.4
     formulas.  Unique keys, 100% selectivity. *)
  let n1 = 400 and n2 = 300 in
  let rng = Rng.create ~seed:21 () in
  let c1, c2 =
    Workload.column_pair rng
      ~outer:(Workload.uniform_spec ~cardinality:n1)
      ~inner:(Workload.uniform_spec ~cardinality:n2)
      ~semijoin_sel:100.0
  in
  let r1 = Workload.load ~with_ttree:true ~name:"R1" c1 in
  let r2 = Workload.load ~with_ttree:true ~name:"R2" c2 in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let measure m =
    Counters.reset ();
    let _, c = Counters.with_counters (fun () -> ignore (Join.run m ~outer ~inner)) in
    c
  in
  (* Nested loops: exactly |R1| * |R2| value comparisons *)
  let c = measure Join.Nested_loops in
  Alcotest.(check int) "nested loops comparisons" (n1 * n2)
    c.Counters.comparisons;
  (* Hash join: exactly one hash call per build insert and one per probe *)
  let c = measure Join.Hash_join in
  Alcotest.(check int) "hash join hash calls" (n1 + n2) c.Counters.hash_calls;
  (* Tree merge: ~(|R1| + 2|R2|) comparisons per the paper; allow a small
     constant factor for run bookkeeping *)
  let c = measure Join.Tree_merge in
  let formula = n1 + (2 * n2) in
  if c.Counters.comparisons > 3 * formula then
    Alcotest.failf "tree merge comparisons %d >> formula %d"
      c.Counters.comparisons formula;
  (* Tree join: O(|R1| log |R2|) comparisons *)
  let c = measure Join.Tree_join in
  (* each probe costs two bound comparisons per tree level plus a binary
     search of the final node, so allow a factor of 4 over the idealized
     |R1| log2 |R2| *)
  let bound =
    4.0 *. float_of_int n1 *. (log (float_of_int n2) /. log 2.0)
  in
  if float_of_int c.Counters.comparisons > bound then
    Alcotest.failf "tree join comparisons %d above O(|R1| log |R2|) bound"
      c.Counters.comparisons

(* --- pointer joins (§2.1) --------------------------------------------------- *)

let employee_fixture () =
  let db = Db.create () in
  let dept_schema =
    Schema.make ~name:"Department"
      [ Schema.col ~ty:Schema.T_string "Name"; Schema.col ~ty:Schema.T_int "Id" ]
  in
  let _ = Db.create_relation db ~schema:dept_schema ~primary_key:"Id" in
  List.iter
    (fun (n, i) ->
      match Db.insert db ~rel:"Department" [| Value.Str n; Value.Int i |] with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [ ("Toy", 459); ("Shoe", 409); ("Linen", 411); ("Paint", 455) ];
  let emp_schema =
    Schema.make ~name:"Employee"
      [
        Schema.col ~ty:Schema.T_string "Name";
        Schema.col ~ty:Schema.T_int "Id";
        Schema.col ~ty:Schema.T_int "Age";
        Schema.col ~ty:(Schema.T_ref "Department") "Dept";
      ]
  in
  let _ = Db.create_relation db ~schema:emp_schema ~primary_key:"Id" in
  List.iter
    (fun (n, id, age, dept) ->
      match
        Db.insert db ~rel:"Employee"
          [| Value.Str n; Value.Int id; Value.Int age; Value.Int dept |]
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [
      ("Dave", 23, 24, 459);
      ("Suzan", 12, 27, 459);
      ("Yaman", 44, 54, 411);
      ("Jane", 43, 47, 411);
      ("Cindy", 22, 22, 409);
      ("Hank", 77, 70, 409);
    ];
  db

let test_foreign_key_substitution () =
  let db = employee_fixture () in
  let emp = Db.find_exn db "Employee" in
  let dave = Option.get (Relation.lookup_one emp [| Value.Int 23 |]) in
  (match Tuple.get dave 3 with
  | Value.Ref d -> Alcotest.(check bool) "resolved to Toy" true (Tuple.get d 0 = Value.Str "Toy")
  | v -> Alcotest.failf "expected pointer, got %s" (Value.to_string v));
  (* dangling FK rejected *)
  match
    Db.insert db ~rel:"Employee"
      [| Value.Str "Ghost"; Value.Int 99; Value.Int 30; Value.Int 999 |]
  with
  | Ok _ -> Alcotest.fail "dangling foreign key accepted"
  | Error _ -> ()

let test_precomputed_join () =
  let db = employee_fixture () in
  let emp = Db.find_exn db "Employee" in
  let dept = Db.find_exn db "Department" in
  let tl =
    Join.precomputed ~outer:emp ~ref_col:3 ~inner_schema:(Relation.schema dept)
      ()
  in
  Alcotest.(check int) "every employee pairs with a department" 6
    (Temp_list.length tl);
  (* spot-check one pair *)
  let found = ref false in
  Temp_list.iter tl (fun e ->
      if Tuple.get e.(0) 0 = Value.Str "Dave" then begin
        found := true;
        Alcotest.(check bool) "Dave -> Toy" true (Tuple.get e.(1) 0 = Value.Str "Toy")
      end);
  Alcotest.(check bool) "Dave found" true !found

let test_pointer_join_query2 () =
  (* Query 2: employees in the Toy or Shoe departments. *)
  let db = employee_fixture () in
  let emp = Db.find_exn db "Employee" in
  let dept = Db.find_exn db "Department" in
  let selected =
    Select.select dept
      [
        Select.Filter
          (fun t ->
            Tuple.get t 0 = Value.Str "Toy" || Tuple.get t 0 = Value.Str "Shoe");
      ]
  in
  Alcotest.(check int) "two departments" 2 (Temp_list.length selected);
  let tl = Join.pointer_join ~outer:emp ~ref_col:3 ~selected in
  let names =
    List.sort compare
      (List.map
         (fun row -> Value.to_string row.(0))
         (Temp_list.materialize (Temp_list.project tl [ "Employee.Name" ])))
  in
  Alcotest.(check (list string)) "toy+shoe employees"
    [ "\"Cindy\""; "\"Dave\""; "\"Hank\""; "\"Suzan\"" ]
    names

let test_refs_link_unlink () =
  (* one-to-many: Department carries a pointer list of its employees *)
  let db = Db.create () in
  let emp_schema =
    Schema.make ~name:"Employee"
      [ Schema.col ~ty:Schema.T_string "Name"; Schema.col ~ty:Schema.T_int "Id" ]
  in
  let _ = Db.create_relation db ~schema:emp_schema ~primary_key:"Id" in
  let dept_schema =
    Schema.make ~name:"Department"
      [
        Schema.col ~ty:Schema.T_string "Name";
        Schema.col ~ty:Schema.T_int "Id";
        Schema.col ~ty:(Schema.T_refs "Employee") "Members";
      ]
  in
  let dept_rel =
    match Db.create_relation db ~schema:dept_schema ~primary_key:"Id" with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun (n, i) ->
      match Db.insert db ~rel:"Employee" [| Value.Str n; Value.Int i |] with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [ ("Dave", 1); ("Suzan", 2) ];
  let toy =
    match
      Db.insert db ~rel:"Department"
        [| Value.Str "Toy"; Value.Int 459; Value.Refs [] |]
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  (match Db.link db ~rel:"Department" toy ~col:2 ~target_key:(Value.Int 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Db.link db ~rel:"Department" toy ~col:2 ~target_key:(Value.Int 2) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* idempotent *)
  (match Db.link db ~rel:"Department" toy ~col:2 ~target_key:(Value.Int 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Tuple.get toy 2 with
  | Value.Refs ts -> Alcotest.(check int) "two members" 2 (List.length ts)
  | _ -> Alcotest.fail "not a pointer list");
  (* the precomputed join fans out over the list *)
  let joined =
    Join.precomputed ~outer:dept_rel ~ref_col:2 ~inner_schema:emp_schema ()
  in
  Alcotest.(check int) "fan-out" 2 (Temp_list.length joined);
  (match Db.unlink db ~rel:"Department" toy ~col:2 ~target_key:(Value.Int 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Tuple.get toy 2 with
  | Value.Refs ts -> Alcotest.(check int) "one member" 1 (List.length ts)
  | _ -> Alcotest.fail "not a pointer list");
  (* error paths *)
  (match Db.link db ~rel:"Department" toy ~col:2 ~target_key:(Value.Int 99) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dangling link accepted");
  match Db.link db ~rel:"Department" toy ~col:0 ~target_key:(Value.Int 1) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "link on non-refs column accepted"

(* --- projection (§3.4) ------------------------------------------------------ *)

let test_projection_methods_agree () =
  let rng = Rng.create ~seed:8 () in
  let col =
    Workload.column rng ~spec:{ cardinality = 400; dup_pct = 70.0; dup_stddev = 0.4 }
  in
  let rel = Workload.load ~name:"P" col in
  let tl = Temp_list.of_relation rel in
  let labels = [ "P.jcol" ] in
  let to_values out =
    List.sort compare
      (List.map (fun r -> r.(0)) (Temp_list.materialize out))
  in
  let s = Project.sort_scan tl labels and h = Project.hashing tl labels in
  Alcotest.(check int) "same cardinality" (Temp_list.length s) (Temp_list.length h);
  Alcotest.(check bool) "same values" true (to_values s = to_values h);
  (* exactly the distinct count *)
  let distinct = List.length (List.sort_uniq compare (Array.to_list col)) in
  Alcotest.(check int) "dedup count" distinct (Temp_list.length h)

let projection_equivalence_property =
  QCheck.Test.make ~count:40 ~name:"projection methods agree"
    QCheck.(pair (int_range 0 200) (int_range 0 100))
    (fun (n, dup) ->
      let rng = Rng.create ~seed:(n + (201 * dup)) () in
      let col =
        if n = 0 then [||]
        else
          Workload.column rng
            ~spec:{ cardinality = n; dup_pct = float_of_int dup; dup_stddev = 0.3 }
      in
      let rel = Workload.load ~name:"P" col in
      let tl = Temp_list.of_relation rel in
      let labels = [ "P.jcol" ] in
      let s = Project.sort_scan tl labels and h = Project.hashing tl labels in
      let vals out =
        List.sort compare (List.map (fun r -> r.(0)) (Temp_list.materialize out))
      in
      let expected =
        List.sort_uniq compare (List.map (fun v -> Value.Int v) (Array.to_list col))
      in
      vals s = expected && vals h = expected)

(* --- aggregation ------------------------------------------------------------ *)

let test_aggregate_basic () =
  let db = employee_fixture () in
  let emp = Db.find_exn db "Employee" in
  let tl = Temp_list.of_relation emp in
  let r =
    Aggregate.group tl ~by:[]
      ~aggs:
        [
          Aggregate.Count;
          Aggregate.Sum "Employee.Age";
          Aggregate.Avg "Employee.Age";
          Aggregate.Min "Employee.Age";
          Aggregate.Max "Employee.Age";
        ]
  in
  (match r.Aggregate.rows with
  | [ [| c; s; a; mn; mx |] ] ->
      Alcotest.(check bool) "count" true (c = Value.Int 6);
      Alcotest.(check bool) "sum" true (s = Value.Int (24 + 27 + 54 + 47 + 22 + 70));
      (match a with
      | Value.Float f -> Alcotest.(check (float 0.01)) "avg" (244.0 /. 6.0) f
      | _ -> Alcotest.fail "avg type");
      Alcotest.(check bool) "min" true (mn = Value.Int 22);
      Alcotest.(check bool) "max" true (mx = Value.Int 70)
  | _ -> Alcotest.fail "row shape");
  Alcotest.(check (list string)) "header"
    [
      "count(*)"; "sum(Employee.Age)"; "avg(Employee.Age)";
      "min(Employee.Age)"; "max(Employee.Age)";
    ]
    r.Aggregate.header

let test_aggregate_group_by () =
  let db = employee_fixture () in
  let emp = Db.find_exn db "Employee" in
  let dept = Db.find_exn db "Department" in
  let joined =
    Join.precomputed ~outer:emp ~ref_col:3 ~inner_schema:(Relation.schema dept)
      ()
  in
  let r =
    Aggregate.group joined ~by:[ "Department.Name" ]
      ~aggs:[ Aggregate.Count; Aggregate.Avg "Employee.Age" ]
  in
  Alcotest.(check int) "three departments employ people" 3
    (List.length r.Aggregate.rows);
  (* find the Toy group: Dave (24) + Suzan (27) *)
  let toy =
    List.find
      (fun row -> row.(0) = Value.Str "Toy")
      r.Aggregate.rows
  in
  Alcotest.(check bool) "toy count" true (toy.(1) = Value.Int 2);
  (match toy.(2) with
  | Value.Float f -> Alcotest.(check (float 0.01)) "toy avg" 25.5 f
  | _ -> Alcotest.fail "avg type")

let test_aggregate_edge_cases () =
  let db = employee_fixture () in
  let emp = Db.find_exn db "Employee" in
  (* empty input, no grouping: one row of empty aggregates *)
  let empty =
    Select.select emp [ Select.Eq (2, Value.Int 999) ]
  in
  let r = Aggregate.group empty ~by:[] ~aggs:[ Aggregate.Count; Aggregate.Avg "Employee.Age" ] in
  (match r.Aggregate.rows with
  | [ [| c; a |] ] ->
      Alcotest.(check bool) "count 0" true (c = Value.Int 0);
      Alcotest.(check bool) "avg null" true (a = Value.Null)
  | _ -> Alcotest.fail "empty aggregate shape");
  (* empty input with grouping: no rows *)
  let r2 = Aggregate.group empty ~by:[ "Employee.Name" ] ~aggs:[ Aggregate.Count ] in
  Alcotest.(check int) "no groups" 0 (List.length r2.Aggregate.rows);
  (* unknown label *)
  match Aggregate.group empty ~by:[] ~aggs:[ Aggregate.Sum "Nope" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown label accepted"

(* --- optimizer (§4) ----------------------------------------------------------- *)

let test_optimizer_prefers_precomputed () =
  let db = employee_fixture () in
  let emp = Db.find_exn db "Employee" in
  let dept = Db.find_exn db "Department" in
  let outer = { Join.rel = emp; col = 3 } in
  let inner = { Join.rel = dept; col = 1 } in
  match Optimizer.choose_join ~outer ~inner () with
  | Optimizer.Precomputed 3 -> ()
  | c -> Alcotest.failf "expected precomputed, got %a" Optimizer.pp_choice c

let test_optimizer_join_rules () =
  let mk n ~tree name =
    Workload.load ~with_ttree:tree ~name (Array.init n (fun i -> i))
  in
  let side rel = { Join.rel; col = Workload.jcol } in
  (* both trees -> tree merge *)
  (match
     Optimizer.choose_join
       ~outer:(side (mk 100 ~tree:true "A"))
       ~inner:(side (mk 100 ~tree:true "B"))
       ()
   with
  | Optimizer.Algorithm Join.Tree_merge -> ()
  | c -> Alcotest.failf "want tree merge, got %a" Optimizer.pp_choice c);
  (* inner tree, small outer -> tree join *)
  (match
     Optimizer.choose_join
       ~outer:(side (mk 20 ~tree:false "C"))
       ~inner:(side (mk 100 ~tree:true "D"))
       ()
   with
  | Optimizer.Algorithm Join.Tree_join -> ()
  | c -> Alcotest.failf "want tree join, got %a" Optimizer.pp_choice c);
  (* inner tree, large outer -> hash join *)
  (match
     Optimizer.choose_join
       ~outer:(side (mk 90 ~tree:false "E"))
       ~inner:(side (mk 100 ~tree:true "F"))
       ()
   with
  | Optimizer.Algorithm Join.Hash_join -> ()
  | c -> Alcotest.failf "want hash join, got %a" Optimizer.pp_choice c);
  (* no indices -> hash join *)
  (match
     Optimizer.choose_join
       ~outer:(side (mk 50 ~tree:false "G"))
       ~inner:(side (mk 50 ~tree:false "H"))
       ()
   with
  | Optimizer.Algorithm Join.Hash_join -> ()
  | c -> Alcotest.failf "want hash join, got %a" Optimizer.pp_choice c);
  (* both trees but high duplicates + selectivity -> sort merge *)
  match
    Optimizer.choose_join
      ~stats:{ Optimizer.dup_pct = 90.0; semijoin_sel = 100.0 }
      ~outer:(side (mk 100 ~tree:true "I"))
      ~inner:(side (mk 100 ~tree:true "J"))
      ()
  with
  | Optimizer.Algorithm Join.Sort_merge -> ()
  | c -> Alcotest.failf "want sort merge, got %a" Optimizer.pp_choice c

let test_cost_formulas () =
  (* §3.3.4: the comparison-count formulas and their implied orderings *)
  let o = 30_000 and i = 30_000 in
  let nl = Optimizer.Cost.nested_loops ~outer:o ~inner:i in
  let hj = Optimizer.Cost.hash_join ~outer:o ~inner:i in
  let tj = Optimizer.Cost.tree_join ~outer:o ~inner:i in
  let tm = Optimizer.Cost.tree_merge ~outer:o ~inner:i in
  let sm = Optimizer.Cost.sort_merge ~outer:o ~inner:i in
  (* Test 1's ordering at equal cardinality: TM < HJ < SM ~ TJ, NL last *)
  Alcotest.(check bool) "tree merge cheapest" true (tm < hj && tm < tj && tm < sm);
  Alcotest.(check bool) "hash join beats tree join at scale" true (hj < tj);
  Alcotest.(check bool) "nested loops worst" true
    (nl > hj && nl > tj && nl > tm && nl > sm);
  (* k constraint from the paper: 2 < k << log2 30000 (~14.9) *)
  Alcotest.(check bool) "k in the paper's band" true
    (Optimizer.Cost.hash_lookup_k > 2.0 && Optimizer.Cost.hash_lookup_k < 14.9);
  (* Test 3's crossover: small outer favours tree join, large favours hash *)
  Alcotest.(check bool) "tree join wins for small outer" true
    (Optimizer.Cost.tree_join ~outer:100 ~inner:30_000
    < Optimizer.Cost.hash_join ~outer:100 ~inner:30_000);
  Alcotest.(check bool) "hash join wins for large outer" true
    (Optimizer.Cost.hash_join ~outer:30_000 ~inner:30_000
    < Optimizer.Cost.tree_join ~outer:30_000 ~inner:30_000);
  (* monotone in cardinality *)
  Alcotest.(check bool) "hash join monotone" true
    (Optimizer.Cost.hash_join ~outer:10 ~inner:10
    < Optimizer.Cost.hash_join ~outer:1000 ~inner:1000)

let test_feasible_methods () =
  let mk n ~tree name =
    Workload.load ~with_ttree:tree ~name (Array.init n (fun i -> i))
  in
  let side rel = { Join.rel; col = Workload.jcol } in
  let no_idx =
    Optimizer.feasible_methods
      ~outer:(side (mk 10 ~tree:false "A"))
      ~inner:(side (mk 10 ~tree:false "B"))
  in
  Alcotest.(check bool) "tree methods excluded" true
    ((not (List.mem Join.Tree_merge no_idx))
    && not (List.mem Join.Tree_join no_idx));
  Alcotest.(check bool) "hash/sort/nl always available" true
    (List.mem Join.Hash_join no_idx
    && List.mem Join.Sort_merge no_idx
    && List.mem Join.Nested_loops no_idx);
  let inner_only =
    Optimizer.feasible_methods
      ~outer:(side (mk 10 ~tree:false "C"))
      ~inner:(side (mk 10 ~tree:true "D"))
  in
  Alcotest.(check bool) "tree join feasible, merge not" true
    (List.mem Join.Tree_join inner_only
    && not (List.mem Join.Tree_merge inner_only));
  let both =
    Optimizer.feasible_methods
      ~outer:(side (mk 10 ~tree:true "E"))
      ~inner:(side (mk 10 ~tree:true "F"))
  in
  Alcotest.(check int) "all five feasible" 5 (List.length both)

(* --- end-to-end queries --------------------------------------------------------- *)

let test_query1_end_to_end () =
  (* Query 1: name, age, department name for all employees over 65. *)
  let db = employee_fixture () in
  let q =
    Query.(
      from "Employee"
      |> where_gt "Age" (Value.Int 65)
      |> join "Department" ~on:("Dept", "Id")
      |> project [ "Employee.Name"; "Employee.Age"; "Department.Name" ])
  in
  let plan = Optimizer.plan db q in
  (* the optimizer must pick the precomputed join *)
  (match plan.Optimizer.p_join with
  | Some (Optimizer.Precomputed _, _, _) -> ()
  | _ -> Alcotest.fail "expected precomputed join in plan");
  let out = Executor.execute plan in
  Alcotest.(check int) "one employee over 65" 1 (Temp_list.length out);
  match Temp_list.materialize out with
  | [ [| name; age; dept |] ] ->
      Alcotest.(check bool) "Hank" true (name = Value.Str "Hank");
      Alcotest.(check bool) "age 70" true (age = Value.Int 70);
      Alcotest.(check bool) "Shoe" true (dept = Value.Str "Shoe")
  | _ -> Alcotest.fail "unexpected result shape"

let test_query_select_only () =
  let db = employee_fixture () in
  let q =
    Query.(
      from "Employee"
      |> where_between "Age" ~lo:(Value.Int 25) ~hi:(Value.Int 50)
      |> project [ "Employee.Name" ])
  in
  let out = Executor.query db q in
  (* ages 27 (Suzan) and 47 (Jane) fall in [25, 50] *)
  Alcotest.(check int) "two employees 25..50" 2 (Temp_list.length out)

let test_query_distinct () =
  let db = employee_fixture () in
  let q =
    Query.(
      from "Employee"
      |> join "Department" ~on:("Dept", "Id")
      |> project [ "Department.Name" ]
      |> distinct)
  in
  let out = Executor.query db q in
  (* six employees but only three distinct departments employ them *)
  Alcotest.(check int) "distinct departments" 3 (Temp_list.length out)

let test_query_predicate_reordering () =
  (* the indexable predicate should lead even when written second *)
  let db = employee_fixture () in
  let emp = Db.find_exn db "Employee" in
  (match
     Relation.create_index emp ~idx_name:"by_age" ~columns:[| 2 |]
       ~structure:Relation.Mod_linear_hash
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let q =
    Query.(
      from "Employee"
      (* unindexable filter written first... *)
      |> where_between "Id" ~lo:(Value.Int 0) ~hi:(Value.Int 100)
      (* ...exact-match on a hash-indexed column second *)
      |> where_eq "Age" (Value.Int 24))
  in
  let plan = Optimizer.plan db q in
  (match plan.Optimizer.p_paths with
  | (Select.Hash_lookup "by_age", _) :: _ -> ()
  | (p, _) :: _ -> Alcotest.failf "expected hash lookup to lead, got %a" Select.pp_path p
  | [] -> Alcotest.fail "no paths");
  let out = Executor.execute plan in
  Alcotest.(check int) "one 24-year-old" 1 (Temp_list.length out)

let test_query_forced_method () =
  let db = employee_fixture () in
  let q ~force =
    Query.(
      from "Employee"
      |> join ?force "Department" ~on:("Dept", "Id")
      |> project [ "Employee.Name"; "Department.Name" ])
  in
  let base =
    List.sort compare (Executor.rows (Executor.query db (q ~force:None)))
  in
  (* hash join must agree with the precomputed default — note the forced
     method compares on pointer values in the Dept column vs Id... the
     pointer column does not equal the Id column, so force through
     Nested_loops on matching columns is not applicable here; instead force
     Hash_join on a self-consistent query *)
  ignore base;
  let q2 =
    Query.(
      from "Employee"
      |> join ~force:Join.Hash_join "Department" ~on:("Dept", "Id"))
  in
  (* Dept holds pointers, Id holds ints: no pairs can match *)
  let out = Executor.query db q2 in
  Alcotest.(check int) "pointer-vs-int equijoin is empty" 0
    (Temp_list.length out)

let () =
  Alcotest.run "mmdb_core"
    [
      ( "workload",
        [
          Alcotest.test_case "cardinality" `Quick test_workload_cardinality;
          Alcotest.test_case "duplicate percentage" `Quick
            test_workload_duplicates;
          Alcotest.test_case "skew shapes (Graph 3)" `Quick
            test_workload_skew_shapes;
          Alcotest.test_case "semijoin selectivity" `Quick
            test_workload_semijoin_selectivity;
          Alcotest.test_case "load into relation" `Quick test_workload_load;
        ] );
      ( "select",
        [
          Alcotest.test_case "paths agree" `Quick test_select_paths_agree;
          Alcotest.test_case "best path ordering (§4)" `Quick
            test_select_best_path_ordering;
          Alcotest.test_case "range + residual predicates" `Quick
            test_select_range_and_residual;
        ] );
      ( "join",
        [
          Alcotest.test_case "methods agree (fixed)" `Quick
            test_join_methods_agree_simple;
          QCheck_alcotest.to_alcotest join_equivalence_property;
          Alcotest.test_case "tree methods need indexes" `Quick
            test_tree_join_requires_index;
          Alcotest.test_case "outer filter pushdown" `Quick
            test_join_outer_filter;
          Alcotest.test_case "inequality joins (§3.3.5)" `Quick
            test_inequality_join;
          QCheck_alcotest.to_alcotest inequality_join_property;
          Alcotest.test_case "lookup_from" `Quick test_lookup_from;
          Alcotest.test_case "operation counts match §3.3.4 formulas" `Quick
            test_join_operation_counts;
        ] );
      ( "pointer joins",
        [
          Alcotest.test_case "FK substitution" `Quick
            test_foreign_key_substitution;
          Alcotest.test_case "precomputed join (Query 1)" `Quick
            test_precomputed_join;
          Alcotest.test_case "pointer join (Query 2)" `Quick
            test_pointer_join_query2;
          Alcotest.test_case "one-to-many link/unlink" `Quick
            test_refs_link_unlink;
        ] );
      ( "project",
        [
          Alcotest.test_case "methods agree" `Quick
            test_projection_methods_agree;
          QCheck_alcotest.to_alcotest projection_equivalence_property;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "whole-input aggregates" `Quick
            test_aggregate_basic;
          Alcotest.test_case "group by over a join" `Quick
            test_aggregate_group_by;
          Alcotest.test_case "edge cases" `Quick test_aggregate_edge_cases;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "precomputed preferred" `Quick
            test_optimizer_prefers_precomputed;
          Alcotest.test_case "join method rules" `Quick
            test_optimizer_join_rules;
          Alcotest.test_case "cost formulas (§3.3.4)" `Quick
            test_cost_formulas;
          Alcotest.test_case "feasible methods" `Quick test_feasible_methods;
        ] );
      ( "executor",
        [
          Alcotest.test_case "Query 1 end-to-end" `Quick
            test_query1_end_to_end;
          Alcotest.test_case "select-only query" `Quick test_query_select_only;
          Alcotest.test_case "distinct" `Quick test_query_distinct;
          Alcotest.test_case "forced join method" `Quick
            test_query_forced_method;
          Alcotest.test_case "predicate reordering" `Quick
            test_query_predicate_reordering;
        ] );
    ]
