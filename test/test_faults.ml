(* Crash-consistency torture tests for the §2.4 fault-injection harness.

   A fixed multi-transaction workload runs against a manager whose
   injector is armed at one registered fault point (or a corruption +
   crash pair).  The injected crash aborts the script mid-flight; recovery
   then runs against the surviving disk store and log device, and the
   recovered database must equal the reference state after the last
   acknowledged commit — the committed prefix.  Corruption scenarios
   additionally pin down the typed issue recovery must report. *)

open Mmdb_storage
open Mmdb_txn

exception Workload_failed of string

let failf fmt = Fmt.kstr (fun m -> raise (Workload_failed m)) fmt

(* ------------------------------------------------------------------ *)
(* The scripted workload                                              *)
(* ------------------------------------------------------------------ *)

let rel_names = [ "Acct"; "Audit" ]

let primary =
  {
    Relation.idx_name = "pk";
    columns = [| 0 |];
    unique = true;
    structure = Relation.T_tree;
  }

let mk_acct () =
  Relation.create ~slot_capacity:4
    ~schema:
      (Schema.make ~name:"Acct"
         [ Schema.col ~ty:Schema.T_int "Id"; Schema.col ~ty:Schema.T_int "Bal" ])
    ~primary ()

let mk_audit () =
  Relation.create ~slot_capacity:4
    ~schema:
      (Schema.make ~name:"Audit"
         [
           Schema.col ~ty:Schema.T_int "Id"; Schema.col ~ty:Schema.T_string "Note";
         ])
    ~primary ()

(* The injector is armed only after setup, so relation registration never
   trips a fault point and the hit arithmetic below starts at zero. *)
let fresh_instance () =
  let fault = Fault.create () in
  let mgr = Txn.create_manager ~fault () in
  List.iter
    (fun rel ->
      match Txn.add_relation mgr rel with
      | Ok () -> ()
      | Error m -> failf "setup: %s" m)
    [ mk_acct (); mk_audit () ];
  (mgr, fault)

let okt = function
  | Ok () -> ()
  | Error f -> failf "operation: %a" Txn.pp_failure f

let find mgr rel key =
  match Txn.relation mgr rel with
  | None -> failf "relation %s missing" rel
  | Some r -> (
      match Relation.lookup_one r [| Value.Int key |] with
      | Some tu -> tu
      | None -> failf "%s key %d missing" rel key)

(* Four transactions with a checkpoint and a partial propagation between
   them.  Record/LSN layout (the scenario skip arithmetic relies on it):

     T1  lsn 1-9    insert Acct 1..8 (fills p0, p1) + Audit 1
     T2  lsn 10-12  update Acct 1, 2 + Audit 2
     checkpoint_all   — propagates lsn 1-12, writes images, truncates
     T3  lsn 13-18  insert Acct 9..12 (fresh p2) + update Acct 1 + Audit 3
     propagate ~limit:3 — applies lsn 13-15 (all land in Acct p2)
     T4  lsn 19-22  insert Acct 13 + delete Acct 9 + update Acct 10 + Audit 4 *)
let run_workload ?(on_commit = fun _ -> ()) mgr =
  let commit k t =
    match Txn.commit t with
    | Ok () -> on_commit k
    | Error m -> failf "commit %d: %s" k m
  in
  let t1 = Txn.begin_txn mgr in
  for i = 1 to 8 do
    okt (Txn.insert t1 ~rel:"Acct" [| Value.Int i; Value.Int (100 * i) |])
  done;
  okt (Txn.insert t1 ~rel:"Audit" [| Value.Int 1; Value.Str "t1: open accounts" |]);
  commit 1 t1;
  let t2 = Txn.begin_txn mgr in
  okt (Txn.update t2 ~rel:"Acct" (find mgr "Acct" 1) ~col:1 (Value.Int 150));
  okt (Txn.update t2 ~rel:"Acct" (find mgr "Acct" 2) ~col:1 (Value.Int 250));
  okt (Txn.insert t2 ~rel:"Audit" [| Value.Int 2; Value.Str "t2: adjust" |]);
  commit 2 t2;
  Txn.checkpoint_all mgr;
  let t3 = Txn.begin_txn mgr in
  for i = 9 to 12 do
    okt (Txn.insert t3 ~rel:"Acct" [| Value.Int i; Value.Int (100 * i) |])
  done;
  okt (Txn.update t3 ~rel:"Acct" (find mgr "Acct" 1) ~col:1 (Value.Int 175));
  okt (Txn.insert t3 ~rel:"Audit" [| Value.Int 3; Value.Str "t3: expand" |]);
  commit 3 t3;
  ignore (Log_device.propagate ~limit:3 (Txn.device mgr));
  let t4 = Txn.begin_txn mgr in
  okt (Txn.insert t4 ~rel:"Acct" [| Value.Int 13; Value.Int 1300 |]);
  okt (Txn.delete t4 ~rel:"Acct" (find mgr "Acct" 9));
  okt (Txn.update t4 ~rel:"Acct" (find mgr "Acct" 10) ~col:1 (Value.Int 999));
  okt (Txn.insert t4 ~rel:"Audit" [| Value.Int 4; Value.Str "t4: churn" |]);
  commit 4 t4

(* Order-independent logical image of the database: per relation, the
   sorted stringified rows. *)
let snapshot mgr =
  List.map
    (fun name ->
      match Txn.relation mgr name with
      | None -> (name, [])
      | Some r ->
          let rows = ref [] in
          Relation.iter r (fun tu ->
              let row =
                Tuple.fields tu |> Array.to_list
                |> List.map Value.to_string
                |> String.concat "|"
              in
              rows := row :: !rows);
          (name, List.sort compare !rows))
    rel_names

let pp_snapshot ppf s =
  List.iter
    (fun (n, rows) -> Fmt.pf ppf "%s: [%s]@ " n (String.concat "; " rows))
    s

(* reference.(k) = database state after commit k of a fault-free run. *)
let reference =
  lazy
    (let mgr, _ = fresh_instance () in
     let snaps = Array.make 5 [] in
     snaps.(0) <- snapshot mgr;
     run_workload ~on_commit:(fun k -> snaps.(k) <- snapshot mgr) mgr;
     snaps)

(* ------------------------------------------------------------------ *)
(* Scenario matrix: crash at every registered fault point             *)
(* ------------------------------------------------------------------ *)

type arming = { point : string; skip : int; action : Fault.action }

type scenario = {
  name : string;
  armings : arming list;
  expect_commit : int;  (** recovered DB must equal reference.(this) *)
  expect_issue : [ `None | `Torn_tail | `Corrupt_image ];
}

let scenarios =
  [
    {
      name = "crash before T4 reaches the log (transaction lost)";
      armings = [ { point = "commit.before-log"; skip = 3; action = Crash } ];
      expect_commit = 3;
      expect_issue = `None;
    };
    {
      name = "crash after T4 reaches the log (durable, unacknowledged)";
      armings = [ { point = "commit.after-log"; skip = 3; action = Crash } ];
      expect_commit = 4;
      expect_issue = `None;
    };
    {
      name = "crash entering the checkpoint's propagation";
      armings = [ { point = "propagate.before"; skip = 0; action = Crash } ];
      expect_commit = 2;
      expect_issue = `None;
    };
    {
      name = "crash mid-propagation, before the 6th change applies";
      armings = [ { point = "propagate.record"; skip = 5; action = Crash } ];
      expect_commit = 2;
      expect_issue = `None;
    };
    {
      name = "crash after propagation, before any image is rewritten";
      armings = [ { point = "propagate.after"; skip = 0; action = Crash } ];
      expect_commit = 2;
      expect_issue = `None;
    };
    {
      name = "crash between checkpoint image writes";
      armings = [ { point = "checkpoint.partial"; skip = 1; action = Crash } ];
      expect_commit = 2;
      expect_issue = `None;
    };
    {
      name = "crash entering the explicit partial propagate";
      armings = [ { point = "propagate.before"; skip = 1; action = Crash } ];
      expect_commit = 3;
      expect_issue = `None;
    };
    {
      (* the checkpoint propagates 12 records (hits 1-12); hit 13 is the
         first change of the explicit partial propagate *)
      name = "crash on the partial propagate's first change";
      armings = [ { point = "propagate.record"; skip = 12; action = Crash } ];
      expect_commit = 3;
      expect_issue = `None;
    };
    {
      (* absorb is hit once per commit: skip 3 mangles the last record of
         T4's batch, and the paired crash means the commit is never
         acknowledged — exactly a torn tail at the moment of the crash.
         validate_log must drop all four T4 records (commit atomicity). *)
      name = "torn log tail under T4's batch";
      armings =
        [
          { point = "absorb.torn-tail"; skip = 3; action = Corrupt };
          { point = "commit.after-log"; skip = 3; action = Crash };
        ];
      expect_commit = 3;
      expect_issue = `Torn_tail;
    };
    {
      (* apply_change is hit once per propagated record: hits 13-15 are the
         partial propagate's inserts into Acct p2; flipping a bit on the
         last of them (skip 14) leaves p2's checksum stale with no later
         write to re-seal it, and the paired crash strikes right after the
         propagate.  All of p2 is still in the retained log (truncation
         happened at the earlier checkpoint), so recovery must quarantine
         the image and rebuild every suspect tuple. *)
      name = "bit-flipped partition image, rebuilt from the retained log";
      armings =
        [
          { point = "image.bit-flip"; skip = 14; action = Corrupt };
          { point = "propagate.after"; skip = 1; action = Crash };
        ];
      expect_commit = 3;
      expect_issue = `Corrupt_image;
    };
  ]

let run_scenario s () =
  let mgr, fault = fresh_instance () in
  List.iter
    (fun a -> Fault.arm fault ~point:a.point ~skip:a.skip a.action)
    s.armings;
  let acked = ref 0 in
  (try run_workload ~on_commit:(fun k -> acked := k) mgr
   with Fault.Injected_crash _ -> ());
  List.iter
    (fun a ->
      if Fault.fired_count fault ~point:a.point = 0 then
        Alcotest.failf "point %s never fired — stale skip arithmetic?" a.point)
    s.armings;
  if !acked > s.expect_commit then
    Alcotest.failf "%d commits acknowledged, beyond expected prefix %d" !acked
      s.expect_commit;
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[ "Acct" ]
  in
  Recovery.finish_background state;
  let mgr' = Recovery.manager state in
  let expected = (Lazy.force reference).(s.expect_commit) in
  let got = snapshot mgr' in
  if got <> expected then
    Alcotest.failf
      "recovered state diverges from committed prefix %d@.expected: %a@.got:      %a"
      s.expect_commit pp_snapshot expected pp_snapshot got;
  List.iter
    (fun n ->
      match Txn.relation mgr' n with
      | None -> Alcotest.failf "relation %s not recovered" n
      | Some r -> (
          match Relation.validate r with
          | Ok () -> ()
          | Error m -> Alcotest.failf "recovered %s fails validation: %s" n m))
    rel_names;
  let issues = Recovery.issues state in
  let pp_issues = Fmt.(list ~sep:semi Recovery.pp_issue) in
  match s.expect_issue with
  | `None ->
      if issues <> [] then
        Alcotest.failf "clean crash reported issues: %a" pp_issues issues
  | `Torn_tail -> (
      match issues with
      | [ Recovery.Torn_log_tail { dropped_records; _ } ] ->
          Alcotest.(check int)
            "whole torn transaction dropped" 4 dropped_records
      | _ -> Alcotest.failf "expected one torn-tail issue: %a" pp_issues issues)
  | `Corrupt_image -> (
      match issues with
      | [ Recovery.Corrupt_image { rel; suspect_tuples; recovered_tuples; _ } ]
        ->
          Alcotest.(check string) "damaged relation" "Acct" rel;
          Alcotest.(check bool) "image had suspects" true (suspect_tuples > 0);
          Alcotest.(check int) "every suspect tuple rebuilt from the log"
            suspect_tuples recovered_tuples
      | _ ->
          Alcotest.failf "expected one corrupt-image issue: %a" pp_issues issues)

(* ------------------------------------------------------------------ *)
(* Reference-run shape                                                *)
(* ------------------------------------------------------------------ *)

let test_reference_shape () =
  let snaps = Lazy.force reference in
  let count name k =
    match List.assoc_opt name snaps.(k) with
    | Some rows -> List.length rows
    | None -> -1
  in
  Alcotest.(check int) "accts after T1" 8 (count "Acct" 1);
  Alcotest.(check int) "accts after T3" 12 (count "Acct" 3);
  (* T4: +1 insert, -1 delete *)
  Alcotest.(check int) "accts after T4" 12 (count "Acct" 4);
  Alcotest.(check int) "audits after T4" 4 (count "Audit" 4);
  Alcotest.(check bool) "T2 changed the database" true (snaps.(1) <> snaps.(2))

(* ------------------------------------------------------------------ *)
(* Checksum and injector unit tests                                   *)
(* ------------------------------------------------------------------ *)

let sealed_records () =
  let buf = Log_buffer.create () in
  Log_buffer.append buf ~txn:7 ~rel:"R" ~pid:0
    (Log_record.Insert
       { sid = 1; svalues = [| Log_record.S_int 42; Log_record.S_str "x" |] });
  Log_buffer.append buf ~txn:7 ~rel:"R" ~pid:0
    (Log_record.Update { tid = 1; col = 0; svalue = Log_record.S_float 3.5 });
  Log_buffer.append buf ~txn:7 ~rel:"R" ~pid:1 (Log_record.Delete { tid = 9 });
  Log_buffer.commit buf ~txn:7

let test_checksum_detects_corruption () =
  let records = sealed_records () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "sealed record verifies" true (Log_record.verify r))
    records;
  let rng = Mmdb_util.Rng.create ~seed:7 () in
  let rand bound = Mmdb_util.Rng.int rng bound in
  List.iter
    (fun r ->
      let bad = Log_record.corrupt_record ~rand r in
      Alcotest.(check bool)
        "corrupted payload fails verify" false (Log_record.verify bad))
    records;
  (match records with
  | a :: b :: _ ->
      Alcotest.(check bool) "distinct payloads hash apart" true
        (Log_record.checksum a <> Log_record.checksum b)
  | _ -> Alcotest.fail "expected three records");
  (* the image checksum is order-dependent, as a serialized image is *)
  let st i = { Log_record.sid = i; svalues = [| Log_record.S_int i |] } in
  Alcotest.(check bool) "stuple hashes differ" true
    (Log_record.hash_stuple (st 1) <> Log_record.hash_stuple (st 2))

let test_injector_determinism () =
  let mk () =
    let f = Fault.create ~seed:11 () in
    Fault.arm f ~point:"propagate.record" ~skip:2 ~count:2 Fault.Crash;
    f
  in
  let hits f =
    List.init 6 (fun _ -> Fault.fire f ~point:"propagate.record" <> None)
  in
  let f1 = mk () in
  let h1 = hits f1 in
  Alcotest.(check (list bool))
    "skip 2 hits, then fire exactly twice"
    [ false; false; true; true; false; false ]
    h1;
  Alcotest.(check (list bool))
    "same (seed, arming) reproduces the same firings" h1
    (hits (mk ()));
  Alcotest.(check int) "fired_count" 2
    (Fault.fired_count f1 ~point:"propagate.record");
  Alcotest.(check (list string))
    "fired log, oldest first"
    [ "propagate.record"; "propagate.record" ]
    (Fault.fired f1);
  let draws f = List.init 5 (fun _ -> Fault.rand f 1000) in
  let g1 = Fault.create ~seed:99 () and g2 = Fault.create ~seed:99 () in
  Alcotest.(check (list int))
    "corruption stream is seed-deterministic" (draws g1) (draws g2);
  (match Fault.arm f1 ~point:"no.such.point" Fault.Crash with
  | () -> Alcotest.fail "unregistered point accepted"
  | exception Invalid_argument _ -> ());
  match Fault.arm Fault.none ~point:"commit.after-log" Fault.Crash with
  | () -> Alcotest.fail "inert injector accepted an arming"
  | exception Invalid_argument _ -> ()

let test_validate_log_lsn_gap () =
  let buf = Log_buffer.create () in
  for i = 1 to 4 do
    Log_buffer.append buf ~txn:1 ~rel:"R" ~pid:0
      (Log_record.Insert { sid = i; svalues = [| Log_record.S_int i |] })
  done;
  let records = Log_buffer.commit buf ~txn:1 in
  let gappy = List.filter (fun r -> r.Log_record.lsn <> 3) records in
  let kept, issues = Recovery.validate_log ~propagated_lsn:0 gappy in
  Alcotest.(check int) "trustworthy prefix stops before the gap" 2
    (List.length kept);
  match issues with
  | [ Recovery.Lsn_gap { expected = 3; found = 4; dropped_records = 1 } ] -> ()
  | _ ->
      Alcotest.failf "unexpected issues: %a"
        Fmt.(list ~sep:semi Recovery.pp_issue)
        issues

(* A corrupt image whose tuples are NOT in the retained log (it was
   truncated at the checkpoint): recovery must quarantine the partition —
   report it, lose only its tuples, never raise or replay damaged data. *)
let test_unrecoverable_image_quarantined () =
  let mgr, fault = fresh_instance () in
  let t = Txn.begin_txn mgr in
  for i = 1 to 8 do
    okt (Txn.insert t ~rel:"Acct" [| Value.Int i; Value.Int (100 * i) |])
  done;
  okt (Txn.insert t ~rel:"Audit" [| Value.Int 1; Value.Str "pre-crash" |]);
  (match Txn.commit t with Ok () -> () | Error m -> Alcotest.fail m);
  Txn.checkpoint_all mgr;
  (* silent media fault after the checkpoint: Acct p0 (accounts 1-4) *)
  Alcotest.(check bool) "image damaged" true
    (Disk_store.corrupt_image (Txn.store mgr) ~rel:"Acct" ~pid:0
       ~rand:(Fault.rand fault));
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[ "Acct" ]
  in
  Recovery.finish_background state;
  let mgr' = Recovery.manager state in
  (match Recovery.issues state with
  | [ Recovery.Corrupt_image { rel; pid; suspect_tuples; recovered_tuples } ]
    ->
      Alcotest.(check string) "relation" "Acct" rel;
      Alcotest.(check int) "partition" 0 pid;
      Alcotest.(check int) "suspects" 4 suspect_tuples;
      Alcotest.(check int) "nothing rebuildable: log was truncated" 0
        recovered_tuples
  | issues ->
      Alcotest.failf "expected one quarantine issue: %a"
        Fmt.(list ~sep:semi Recovery.pp_issue)
        issues);
  let acct = Option.get (Txn.relation mgr' "Acct") in
  Alcotest.(check int) "only the quarantined partition's tuples lost" 4
    (Relation.count acct);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "account %d survived" i)
        true
        (Relation.lookup_one acct [| Value.Int i |] <> None))
    [ 5; 6; 7; 8 ];
  (match Relation.validate acct with
  | Ok () -> ()
  | Error m -> Alcotest.failf "recovered Acct fails validation: %s" m);
  Alcotest.(check int) "untouched relation intact" 1
    (Relation.count (Option.get (Txn.relation mgr' "Audit")))

let () =
  Alcotest.run "faults"
    [
      ( "checksums and injector",
        [
          Alcotest.test_case "checksums detect corruption" `Quick
            test_checksum_detects_corruption;
          Alcotest.test_case "injector is deterministic" `Quick
            test_injector_determinism;
          Alcotest.test_case "LSN gap truncates the log" `Quick
            test_validate_log_lsn_gap;
          Alcotest.test_case "reference workload shape" `Quick
            test_reference_shape;
          Alcotest.test_case "unrecoverable image is quarantined" `Quick
            test_unrecoverable_image_quarantined;
        ] );
      ( "crash-consistency torture",
        List.map
          (fun s -> Alcotest.test_case s.name `Quick (run_scenario s))
          scenarios );
    ]
