(* Tests for the query-language front end: lexer, parser, interpreter. *)

open Mmdb_lang

(* --- lexer ------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT * FROM t WHERE a = 42;" in
  Alcotest.(check int) "token count" 10 (List.length toks);
  (match toks with
  | Lexer.Ident "SELECT" :: Lexer.Star :: Lexer.Ident "FROM" :: _ -> ()
  | _ -> Alcotest.fail "unexpected token stream");
  match List.rev toks with
  | Lexer.Eof :: Lexer.Semicolon :: Lexer.Int 42 :: _ -> ()
  | _ -> Alcotest.fail "unexpected tail"

let test_lexer_strings_and_numbers () =
  (match Lexer.tokenize "'it''s' 3.5 -7" with
  | [ Lexer.String "it's"; Lexer.Float 3.5; Lexer.Int (-7); Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "literal lexing");
  (* comments are skipped *)
  match Lexer.tokenize "a -- trailing comment\nb" with
  | [ Lexer.Ident "a"; Lexer.Ident "b"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "comment handling"

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "'unterminated");
     Alcotest.fail "unterminated string accepted"
   with Lexer.Error _ -> ());
  (* '?' is a placeholder token since the wire protocol's PREPARE *)
  (match Lexer.tokenize "a ? b" with
  | [ Lexer.Ident "a"; Lexer.Qmark; Lexer.Ident "b"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "placeholder lexing");
  try
    ignore (Lexer.tokenize "a @ b");
    Alcotest.fail "bad character accepted"
  with Lexer.Error _ -> ()

(* --- parser ------------------------------------------------------------ *)

let parse_one input =
  match Parser.parse input with
  | Ok [ s ] -> s
  | Ok l -> Alcotest.failf "expected one statement, got %d" (List.length l)
  | Error msg -> Alcotest.fail msg

let test_parse_create_table () =
  match parse_one
          "CREATE TABLE Emp (Name string, Id int PRIMARY KEY, D ref Dept);"
  with
  | Ast.Create_table { name = "Emp"; columns = [ n; id; d ] } ->
      Alcotest.(check string) "col1" "Name" n.Ast.cd_name;
      Alcotest.(check bool) "pk" true id.Ast.cd_primary;
      (match d.Ast.cd_type with
      | Ast.CT_ref "Dept" -> ()
      | _ -> Alcotest.fail "ref type")
  | _ -> Alcotest.fail "wrong statement"

let test_parse_select_full () =
  match
    parse_one
      "SELECT DISTINCT e.Name, Age FROM Emp JOIN Dept ON D = Id USING \
       tree_merge WHERE Age > 30 AND Id BETWEEN 1 AND 99;"
  with
  | Ast.Select s ->
      Alcotest.(check bool) "distinct" true s.Ast.sel_distinct;
      (match s.Ast.sel_columns with
      | `Items [ Ast.Sel_col "e.Name"; Ast.Sel_col "Age" ] -> ()
      | _ -> Alcotest.fail "columns");
      (match s.Ast.sel_join with
      | Some ("Dept", "D", "Id", Some Ast.JM_tree_merge) -> ()
      | _ -> Alcotest.fail "join clause");
      Alcotest.(check int) "two conditions" 2 (List.length s.Ast.sel_where)
  | _ -> Alcotest.fail "wrong statement"

let test_parse_multiple_statements () =
  match Parser.parse "SHOW TABLES; DESCRIBE t; DELETE FROM t;" with
  | Ok [ Ast.Show_tables; Ast.Describe "t"; Ast.Delete _ ] -> ()
  | Ok _ -> Alcotest.fail "wrong statements"
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  let expect_error input =
    match Parser.parse input with
    | Ok _ -> Alcotest.failf "accepted %S" input
    | Error _ -> ()
  in
  expect_error "SELECT FROM;";
  expect_error "CREATE TABLE t";
  expect_error "INSERT INTO t VALUES (1";
  expect_error "SELECT * FROM t WHERE a ? 3;";
  expect_error "FROB x;";
  expect_error "SELECT * FROM t USING banana;"

(* The wire protocol hands whole payloads to the parser, so degenerate
   inputs — empty strings, bare semicolons, trailing terminators — must
   come back as clean (possibly empty) statement lists, not errors. *)
let test_parse_empty_and_trailing () =
  let expect_stmts input n =
    match Parser.parse input with
    | Ok l -> Alcotest.(check int) (Printf.sprintf "%S" input) n (List.length l)
    | Error e -> Alcotest.failf "%S rejected: %s" input e
  in
  expect_stmts "" 0;
  expect_stmts "   \n\t " 0;
  expect_stmts ";" 0;
  expect_stmts ";;;" 0;
  expect_stmts "-- just a comment\n" 0;
  expect_stmts "SHOW TABLES;;" 1;
  expect_stmts "SHOW TABLES;;;DESCRIBE t;;" 2;
  expect_stmts "SHOW TABLES" 1 (* final semicolon is optional *)

let test_parse_params () =
  (* placeholders number left-to-right, across conditions and values *)
  (match Parser.parse "UPDATE t SET a = ?, b = ? WHERE c = ? AND d > ?;" with
  | Ok [ (Ast.Update { assignments; where_; _ } as stmt) ] ->
      Alcotest.(check int) "param count" 4 (Ast.param_count stmt);
      (match assignments with
      | [ ("a", Ast.L_param 0); ("b", Ast.L_param 1) ] -> ()
      | _ -> Alcotest.fail "assignment params");
      (match where_ with
      | [ Ast.C_eq ("c", Ast.L_param 2); Ast.C_gt ("d", Ast.L_param 3) ] -> ()
      | _ -> Alcotest.fail "where params")
  | Ok _ -> Alcotest.fail "wrong statements"
  | Error e -> Alcotest.fail e);
  let insert =
    match Parser.parse "INSERT INTO t VALUES (?, 'x', ?);" with
    | Ok [ s ] -> s
    | _ -> Alcotest.fail "insert parse"
  in
  (* binding substitutes in placeholder order *)
  (match Ast.substitute_params insert [ Ast.L_int 7; Ast.L_bool true ] with
  | Ok (Ast.Insert { values = [ Ast.L_int 7; Ast.L_string "x"; Ast.L_bool true ]; _ })
    -> ()
  | Ok _ -> Alcotest.fail "wrong substitution"
  | Error e -> Alcotest.fail e);
  (* arity mismatches are typed errors *)
  (match Ast.substitute_params insert [ Ast.L_int 7 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too few params accepted");
  match Ast.substitute_params insert [ Ast.L_int 1; Ast.L_int 2; Ast.L_int 3 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too many params accepted"

(* --- interpreter --------------------------------------------------------- *)

let fresh_db_with_demo () =
  let db = Interp.session (Mmdb_core.Db.create ()) in
  let script =
    {|
    CREATE TABLE Department (Name string, Id int PRIMARY KEY);
    INSERT INTO Department VALUES ('Toy', 459);
    INSERT INTO Department VALUES ('Shoe', 409);
    CREATE TABLE Employee (Name string, Id int PRIMARY KEY, Age int,
                           Dept ref Department);
    INSERT INTO Employee VALUES ('Dave', 23, 24, 459);
    INSERT INTO Employee VALUES ('Cindy', 22, 22, 409);
    INSERT INTO Employee VALUES ('Hank', 77, 70, 409);
    |}
  in
  match Interp.exec_string db script with
  | Ok _ -> db
  | Error msg -> Alcotest.fail msg

let rows_of db sql =
  match Interp.exec_string db sql with
  | Ok [ Interp.Rows tl ] -> Mmdb_core.Executor.rows tl
  | Ok _ -> Alcotest.fail "expected rows"
  | Error msg -> Alcotest.fail msg

let test_interp_select () =
  let db = fresh_db_with_demo () in
  let rows = rows_of db "SELECT Name FROM Employee WHERE Age > 23;" in
  Alcotest.(check int) "two older employees" 2 (List.length rows);
  let rows = rows_of db "SELECT * FROM Department;" in
  Alcotest.(check int) "two departments" 2 (List.length rows);
  Alcotest.(check int) "all columns" 2 (List.length (List.hd rows))

let test_interp_join () =
  let db = fresh_db_with_demo () in
  let rows =
    rows_of db
      "SELECT Employee.Name, Department.Name FROM Employee JOIN Department \
       ON Dept = Id WHERE Age > 60;"
  in
  Alcotest.(check (list (list string))) "hank in shoe"
    [ [ "\"Hank\""; "\"Shoe\"" ] ]
    rows

let test_interp_distinct_and_unqualified () =
  let db = fresh_db_with_demo () in
  let rows =
    rows_of db
      "SELECT DISTINCT Department.Name FROM Employee JOIN Department ON Dept \
       = Id;"
  in
  Alcotest.(check int) "two distinct departments" 2 (List.length rows)

let test_interp_delete_and_errors () =
  let db = fresh_db_with_demo () in
  (match Interp.exec_string db "DELETE FROM Employee WHERE Age > 60;" with
  | Ok [ Interp.Message m ] ->
      Alcotest.(check string) "one deleted" "1 tuples deleted from Employee" m
  | _ -> Alcotest.fail "delete failed");
  Alcotest.(check int) "two remain" 2
    (List.length (rows_of db "SELECT Id FROM Employee;"));
  (* errors surface as Error, not exceptions *)
  (match Interp.exec_string db "SELECT * FROM Nowhere;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown relation accepted");
  (match Interp.exec_string db "INSERT INTO Employee VALUES (1);" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity violation accepted");
  (match
     Interp.exec_string db "INSERT INTO Employee VALUES ('X', 1, 2, 999);"
   with
  | Error msg ->
      Alcotest.(check bool) "dangling FK mentioned" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "dangling FK accepted");
  match Interp.exec_string db "CREATE TABLE NoKey (a int);" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "table without primary key accepted"

let test_interp_update () =
  let db = fresh_db_with_demo () in
  (match
     Interp.exec_string db "UPDATE Employee SET Age = 25 WHERE Name = 'Dave';"
   with
  | Ok [ Interp.Message m ] ->
      Alcotest.(check string) "one updated" "1 tuples updated in Employee" m
  | Ok _ -> Alcotest.fail "unexpected outcome"
  | Error e -> Alcotest.fail e);
  let rows = rows_of db "SELECT Age FROM Employee WHERE Name = 'Dave';" in
  Alcotest.(check (list (list string))) "age updated" [ [ "25" ] ] rows;
  (* multiple assignments + broad where *)
  (match
     Interp.exec_string db "UPDATE Employee SET Age = 1, Name = 'X' WHERE Age > 0;"
   with
  | Ok [ Interp.Message m ] ->
      Alcotest.(check string) "all updated" "3 tuples updated in Employee" m
  | Ok _ -> Alcotest.fail "unexpected outcome"
  | Error e -> Alcotest.fail e);
  (* uniqueness violation through the primary key surfaces as an error *)
  (match Interp.exec_string db "UPDATE Employee SET Id = 23;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pk collision accepted");
  match Interp.exec_string db "UPDATE Employee SET Nope = 1;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown column accepted"

let test_parse_aggregates () =
  match
    parse_one
      "SELECT Kind, COUNT(*), AVG(DurationUs) FROM Event GROUP BY Kind;"
  with
  | Ast.Select s ->
      (match s.Ast.sel_columns with
      | `Items
          [
            Ast.Sel_col "Kind";
            Ast.Sel_agg ("count", None);
            Ast.Sel_agg ("avg", Some "DurationUs");
          ] ->
          ()
      | _ -> Alcotest.fail "items");
      Alcotest.(check (list string)) "group by" [ "Kind" ] s.Ast.sel_group_by
  | _ -> Alcotest.fail "wrong statement"

let test_interp_aggregates () =
  let db = fresh_db_with_demo () in
  (* whole-table aggregate *)
  (match Interp.exec_string db "SELECT COUNT(*), AVG(Age) FROM Employee;" with
  | Ok [ Interp.Table r ] -> (
      Alcotest.(check (list string)) "header"
        [ "count(*)"; "avg(Employee.Age)" ]
        r.Mmdb_core.Aggregate.header;
      match r.Mmdb_core.Aggregate.rows with
      | [ [| Mmdb_storage.Value.Int 3; Mmdb_storage.Value.Float avg |] ] ->
          Alcotest.(check (float 0.01)) "avg age" ((24. +. 22. +. 70.) /. 3.) avg
      | _ -> Alcotest.fail "row shape")
  | Ok _ -> Alcotest.fail "expected a table"
  | Error e -> Alcotest.fail e);
  (* grouped aggregate over a join *)
  (match
     Interp.exec_string db
       "SELECT Department.Name, COUNT(*), MAX(Age) FROM Employee JOIN         Department ON Dept = Id GROUP BY Department.Name;"
   with
  | Ok [ Interp.Table r ] ->
      Alcotest.(check int) "two groups" 2
        (List.length r.Mmdb_core.Aggregate.rows)
  | Ok _ -> Alcotest.fail "expected a table"
  | Error e -> Alcotest.fail e);
  (* GROUP BY must match plain columns *)
  (match
     Interp.exec_string db "SELECT Name, COUNT(*) FROM Employee GROUP BY Age;"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched GROUP BY accepted");
  (* SUM on a string column still runs (ignores non-numerics) but unknown
     columns are rejected *)
  match Interp.exec_string db "SELECT SUM(Nope) FROM Employee;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown aggregate column accepted"

let test_interp_transactions () =
  let sess = fresh_db_with_demo () in
  Alcotest.(check bool) "no txn initially" false (Interp.in_txn sess);
  (* deferred visibility *)
  (match Interp.exec_string sess "BEGIN; INSERT INTO Employee VALUES ('New', 99, 30, 459);" with
  | Ok [ Interp.Message _; Interp.Message m ] ->
      Alcotest.(check string) "queued" "1 insert queued" m
  | Ok _ -> Alcotest.fail "unexpected outcomes"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "txn active" true (Interp.in_txn sess);
  Alcotest.(check int) "invisible before commit" 3
    (List.length (rows_of sess "SELECT Id FROM Employee;"));
  (match Interp.exec_string sess "COMMIT;" with
  | Ok [ Interp.Message "committed" ] -> ()
  | _ -> Alcotest.fail "commit failed");
  Alcotest.(check int) "visible after commit" 4
    (List.length (rows_of sess "SELECT Id FROM Employee;"));
  (* rollback *)
  (match
     Interp.exec_string sess
       "BEGIN; DELETE FROM Employee WHERE Age > 0; ROLLBACK;"
   with
  | Ok [ _; Interp.Message m; Interp.Message _ ] ->
      Alcotest.(check string) "four deletes queued" "4 deletes queued in Employee" m
  | Ok _ -> Alcotest.fail "unexpected outcomes"
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "rollback left data intact" 4
    (List.length (rows_of sess "SELECT Id FROM Employee;"));
  (* txn updates *)
  (match
     Interp.exec_string sess
       "BEGIN; UPDATE Employee SET Age = 31 WHERE Id = 99; COMMIT;"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list (list string))) "update applied at commit"
    [ [ "31" ] ]
    (rows_of sess "SELECT Age FROM Employee WHERE Id = 99;");
  (* error paths *)
  (match Interp.exec_string sess "COMMIT;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "commit without txn accepted");
  (match Interp.exec_string sess "BEGIN; BEGIN;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested BEGIN accepted");
  (match Interp.exec_string sess "CREATE TABLE X (a int PRIMARY KEY);" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "DDL inside txn accepted");
  match Interp.exec_string sess "ROLLBACK;" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_interp_explain_and_index () =
  let db = fresh_db_with_demo () in
  (match
     Interp.exec_string db "CREATE INDEX by_age ON Employee (Age) USING btree;"
   with
  | Ok [ Interp.Message _ ] -> ()
  | _ -> Alcotest.fail "index creation failed");
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
    in
    go 0
  in
  match
    Interp.exec_string db "EXPLAIN SELECT Name FROM Employee WHERE Age = 24;"
  with
  | Ok [ Interp.Plan_text p ] ->
      Alcotest.(check bool) "plan mentions tree lookup" true
        (contains p "tree lookup via by_age")
  | _ -> Alcotest.fail "explain failed"

(* EXPLAIN ANALYZE: per-operator rows plus a "total" row whose counters
   are the query's whole Counters delta.  Exclusive operator counters tile
   the inclusive root delta, so the operator rows must sum exactly to the
   total row — the acceptance identity for the tracing layer. *)
let test_explain_analyze_counter_sum () =
  let db = fresh_db_with_demo () in
  let int_at (row : Mmdb_storage.Value.t array) i =
    match row.(i) with
    | Mmdb_storage.Value.Int v -> v
    | v ->
        Alcotest.failf "column %d not an int: %s" i
          (Mmdb_storage.Value.to_string v)
  in
  let str_at (row : Mmdb_storage.Value.t array) i =
    match row.(i) with
    | Mmdb_storage.Value.Str s -> s
    | v ->
        Alcotest.failf "column %d not a string: %s" i
          (Mmdb_storage.Value.to_string v)
  in
  let check_stmt ~ops sql =
    match Interp.exec_string db sql with
    | Ok [ Interp.Table r ] ->
        Alcotest.(check (list string))
          "analyze header"
          [
            "operator"; "time_ms"; "est_rows"; "actual_rows"; "err";
            "comparisons"; "data_moves"; "hash_calls"; "ptr_derefs"; "detail";
          ]
          r.Mmdb_core.Aggregate.header;
        let rows = r.Mmdb_core.Aggregate.rows in
        let rec split_last = function
          | [] -> Alcotest.fail "empty analyze table"
          | [ last ] -> ([], last)
          | row :: rest ->
              let init, last = split_last rest in
              (row :: init, last)
        in
        let op_rows, total = split_last rows in
        Alcotest.(check string) "last row is the total" "total"
          (str_at total 0);
        Alcotest.(check string) "first operator is the root" "query"
          (String.trim (str_at (List.hd op_rows) 0));
        let names =
          List.map (fun row -> String.trim (str_at row 0)) op_rows
        in
        List.iter
          (fun op ->
            Alcotest.(check bool)
              (Printf.sprintf "%s appears in %s" op sql)
              true (List.mem op names))
          ops;
        (* the acceptance identity: operator counters sum to the total *)
        List.iteri
          (fun off col ->
            let summed =
              List.fold_left (fun acc row -> acc + int_at row (5 + off)) 0
                op_rows
            in
            Alcotest.(check int)
              (Printf.sprintf "%s sums to total for %s" col sql)
              (int_at total (5 + off)) summed)
          [ "comparisons"; "data_moves"; "hash_calls"; "ptr_derefs" ];
        (* select/join operator rows carry the optimizer's estimate and
           the symmetric err ratio against the actual row count *)
        List.iter
          (fun row ->
            let name = String.trim (str_at row 0) in
            if name = "select" || name = "join" then begin
              (match row.(2) with
              | Mmdb_storage.Value.Int e ->
                  Alcotest.(check bool) "est_rows >= 1" true (e >= 1)
              | v ->
                  Alcotest.failf "%s est_rows not an int: %s" name
                    (Mmdb_storage.Value.to_string v));
              match row.(4) with
              | Mmdb_storage.Value.Float err ->
                  Alcotest.(check bool) "err >= 1" true (err >= 1.0)
              | v ->
                  Alcotest.failf "%s err not a float: %s" name
                    (Mmdb_storage.Value.to_string v)
            end)
          op_rows;
        (* per-operator wall time is reported and non-negative *)
        List.iter
          (fun row ->
            match row.(1) with
            | Mmdb_storage.Value.Float ms ->
                Alcotest.(check bool) "time_ms >= 0" true (ms >= 0.0)
            | _ -> Alcotest.fail "time_ms not a float")
          op_rows
    | Ok _ -> Alcotest.fail ("expected a table for " ^ sql)
    | Error e -> Alcotest.fail e
  in
  check_stmt ~ops:[ "plan"; "execute"; "select" ]
    "EXPLAIN ANALYZE SELECT Name FROM Employee WHERE Age > 23;";
  check_stmt ~ops:[ "plan"; "execute"; "join" ]
    "EXPLAIN ANALYZE SELECT Employee.Name, Department.Name FROM Employee \
     JOIN Department ON Dept = Id;";
  check_stmt ~ops:[ "project" ]
    "EXPLAIN ANALYZE SELECT DISTINCT Dept FROM Employee;";
  check_stmt ~ops:[ "aggregate" ]
    "EXPLAIN ANALYZE SELECT Age, COUNT(*) FROM Employee GROUP BY Age;";
  (* plain EXPLAIN still answers with the plan text, no execution *)
  match
    Interp.exec_string db "EXPLAIN SELECT Name FROM Employee WHERE Age > 23;"
  with
  | Ok [ Interp.Plan_text _ ] -> ()
  | _ -> Alcotest.fail "EXPLAIN without ANALYZE must stay plan-only"

let test_interp_params () =
  let db = fresh_db_with_demo () in
  (* unbound placeholders must be rejected, not silently misread *)
  (match Interp.exec_string db "SELECT * FROM Employee WHERE Id = ?;" with
  | Error msg ->
      Alcotest.(check bool) "mentions parameters" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "unbound parameter accepted");
  (* bound placeholders behave like inline literals *)
  let stmt =
    match Parser.parse "SELECT Name FROM Employee WHERE Id = ?;" with
    | Ok [ s ] -> s
    | _ -> Alcotest.fail "parse"
  in
  let bound =
    match Ast.substitute_params stmt [ Ast.L_int 23 ] with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match Interp.exec db bound with
  | Ok (Interp.Rows tl) ->
      Alcotest.(check (list (list string)))
        "dave by id" [ [ "\"Dave\"" ] ] (Mmdb_core.Executor.rows tl)
  | _ -> Alcotest.fail "bound query failed"

let () =
  Alcotest.run "mmdb_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "strings/numbers/comments" `Quick
            test_lexer_strings_and_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "create table" `Quick test_parse_create_table;
          Alcotest.test_case "full select" `Quick test_parse_select_full;
          Alcotest.test_case "multiple statements" `Quick
            test_parse_multiple_statements;
          Alcotest.test_case "rejects malformed input" `Quick
            test_parse_errors;
          Alcotest.test_case "aggregates and group by" `Quick
            test_parse_aggregates;
          Alcotest.test_case "empty input and trailing semicolons" `Quick
            test_parse_empty_and_trailing;
          Alcotest.test_case "? placeholders" `Quick test_parse_params;
        ] );
      ( "interp",
        [
          Alcotest.test_case "select" `Quick test_interp_select;
          Alcotest.test_case "join" `Quick test_interp_join;
          Alcotest.test_case "distinct + unqualified columns" `Quick
            test_interp_distinct_and_unqualified;
          Alcotest.test_case "delete and error paths" `Quick
            test_interp_delete_and_errors;
          Alcotest.test_case "update" `Quick test_interp_update;
          Alcotest.test_case "aggregation" `Quick test_interp_aggregates;
          Alcotest.test_case "transactions (BEGIN/COMMIT/ROLLBACK)" `Quick
            test_interp_transactions;
          Alcotest.test_case "explain and index" `Quick
            test_interp_explain_and_index;
          Alcotest.test_case "explain analyze counter sum" `Quick
            test_explain_analyze_counter_sum;
          Alcotest.test_case "prepared-statement parameters" `Quick
            test_interp_params;
        ] );
    ]
