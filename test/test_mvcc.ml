(* MVCC snapshot-isolation semantics.

   The storage-level tests drive Version_store through Relation with a
   second domain standing in for the concurrent writer (a fresh domain
   has fresh DLS: no snapshot, no write scope — exactly the server's
   dispatcher/reader split).  The properties checked are the ones the
   subsystem exists for: repeatable reads within a statement, no dirty
   reads of an in-flight writer, aborted work leaving no visible
   versions, and a GC that never reclaims a version some live snapshot
   can still see (randomized; seed count via MMDB_CHAOS_SEEDS).

   The classification tests pin the server-facing contract: EXPLAIN /
   EXPLAIN ANALYZE and EXEC_PREPARED of a read-only statement must take
   the Read path, or they would barrier behind the writer for nothing. *)

open Mmdb_storage
module Rng = Mmdb_util.Rng
module Ast = Mmdb_lang.Ast
module Parser = Mmdb_lang.Parser
module Db = Mmdb_core.Db
module Mvcc = Mmdb_txn.Mvcc

let value = Alcotest.testable Value.pp Value.equal

let n_seeds =
  match Sys.getenv_opt "MMDB_CHAOS_SEEDS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 5)
  | None -> 5

(* The suite must be meaningful under MMDB_MVCC=0 too, so each test
   forces versioning on and restores the ambient setting after. *)
let with_mvcc f =
  let was = Version_store.enabled () in
  Version_store.set_enabled true;
  Fun.protect ~finally:(fun () -> Version_store.set_enabled was) f

let kv_schema () =
  Schema.make ~name:"KV"
    [ Schema.col ~ty:Schema.T_int "K"; Schema.col ~ty:Schema.T_int "V" ]

let mk_kv () =
  Relation.create ~schema:(kv_schema ())
    ~primary:
      {
        Relation.idx_name = "kv_pk";
        columns = [| 0 |];
        unique = true;
        structure = Relation.T_tree;
      }
    ()

let ins r k v =
  match Relation.insert r [| Value.Int k; Value.Int v |] with
  | Ok t -> t
  | Error e -> Alcotest.fail e

(* All rows visible from the calling context, as a sorted (k, v) list —
   under a snapshot this is the diverted, visibility-filtered scan. *)
let rows r =
  let acc = ref [] in
  Relation.iter r (fun t ->
      acc := (Tuple.get t 0, Tuple.get t 1) :: !acc);
  List.sort compare !acc

(* Run [f] on a fresh domain (fresh DLS: no inherited snapshot or write
   scope) and join it. *)
let on_writer_domain f = Domain.join (Domain.spawn f)

(* --- repeatable read ----------------------------------------------------- *)

let test_repeatable_read () =
  with_mvcc @@ fun () ->
  let r = mk_kv () in
  let t = ins r 1 10 in
  Version_store.with_snapshot (fun snap ->
      Alcotest.(check bool) "snapshot acquired" true (snap >= 0);
      Alcotest.check value "before write" (Value.Int 10) (Tuple.get t 1);
      on_writer_domain (fun () ->
          Version_store.with_write (fun () ->
              match Relation.update_field r t 1 (Value.Int 20) with
              | Ok () -> ()
              | Error e -> Alcotest.fail e));
      Alcotest.check value "unchanged within the statement" (Value.Int 10)
        (Tuple.get t 1);
      (match Relation.lookup ~index:"kv_pk" r [| Value.Int 1 |] with
      | [ tu ] ->
          Alcotest.check value "lookup sees the snapshot too" (Value.Int 10)
            (Tuple.get tu 1)
      | l -> Alcotest.failf "lookup returned %d tuples" (List.length l)));
  Alcotest.check value "new value after the snapshot" (Value.Int 20)
    (Tuple.get t 1)

(* --- no dirty reads ------------------------------------------------------ *)

let test_no_dirty_reads () =
  with_mvcc @@ fun () ->
  let r = mk_kv () in
  ignore (ins r 1 10);
  (* Hold the write scope open on this domain; a reader on another
     domain must not see the unpublished insert or update. *)
  Version_store.with_write (fun () ->
      ignore (ins r 2 20);
      let seen =
        on_writer_domain (fun () -> Version_store.with_snapshot (fun _ -> rows r))
      in
      Alcotest.(check (list (pair value value)))
        "in-flight insert invisible"
        [ (Value.Int 1, Value.Int 10) ]
        seen);
  (* Published at scope exit: a fresh snapshot now sees both rows. *)
  let seen =
    on_writer_domain (fun () -> Version_store.with_snapshot (fun _ -> rows r))
  in
  Alcotest.(check int) "published after scope exit" 2 (List.length seen)

(* --- abort leaves no visible versions ------------------------------------ *)

let test_abort_invisible () =
  with_mvcc @@ fun () ->
  let db = Db.create () in
  let sess = Mmdb_lang.Interp.session db in
  (match
     Mmdb_lang.Interp.exec_string sess
       "CREATE TABLE T (K int PRIMARY KEY, V int); INSERT INTO T VALUES (1, 10);"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match
     Mmdb_lang.Interp.exec_string sess
       "BEGIN; INSERT INTO T VALUES (2, 20); ROLLBACK;"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let r = Db.find_exn db "T" in
  Alcotest.(check int) "live count back to 1" 1 (Relation.count r);
  Version_store.with_snapshot (fun _ ->
      Alcotest.(check (list (pair value value)))
        "no snapshot sees the aborted insert"
        [ (Value.Int 1, Value.Int 10) ]
        (rows r);
      Alcotest.(check int) "snapshot count agrees" 1 (Relation.count r))

(* --- GC vs live snapshots (randomized) ----------------------------------- *)

(* A writer mutates and GCs while the main domain holds one snapshot:
   the rows visible under that snapshot must be identical before and
   after, whatever the writer and the GC did.  Then, with the snapshot
   released, GC must actually reclaim and converge to the live state. *)
let gc_round rng r ~live ~next_key =
  let pick_live () =
    let keys = List.of_seq (Hashtbl.to_seq_keys live) in
    match keys with
    | [] -> None
    | _ -> Some (List.nth keys (Rng.int rng (List.length keys)))
  in
  let tuple_of k =
    match Relation.lookup ~index:"kv_pk" r [| Value.Int k |] with
    | [ t ] -> t
    | l -> Alcotest.failf "key %d: %d tuples" k (List.length l)
  in
  for _ = 1 to 100 do
    match Rng.int rng 10 with
    | 0 | 1 -> (
        (* insert a fresh key *)
        let k = !next_key in
        incr next_key;
        match Relation.insert r [| Value.Int k; Value.Int (k * 7) |] with
        | Ok _ -> Hashtbl.replace live k (k * 7)
        | Error e -> Alcotest.fail e)
    | 2 | 3 -> (
        (* delete a live key *)
        match pick_live () with
        | None -> ()
        | Some k ->
            ignore (Relation.delete_tuple r (tuple_of k));
            Hashtbl.remove live k)
    | n -> (
        (* update a live key, deferred-scope half the time *)
        match pick_live () with
        | None -> ()
        | Some k ->
            let v = Rng.int rng 1_000_000 in
            let apply () =
              match Relation.update_field r (tuple_of k) 1 (Value.Int v) with
              | Ok () -> Hashtbl.replace live k v
              | Error e -> Alcotest.fail e
            in
            if n land 1 = 0 then Version_store.with_write apply else apply ())
  done;
  ignore (Mvcc.gc [ r ])

let test_gc_respects_snapshots () =
  with_mvcc @@ fun () ->
  for seed = 1 to n_seeds do
    let r = mk_kv () in
    let live = Hashtbl.create 64 in
    for k = 0 to 63 do
      ignore (ins r k (k * 7));
      Hashtbl.replace live k (k * 7)
    done;
    let next_key = ref 1000 in
    for round = 1 to 3 do
      Version_store.with_snapshot (fun _ ->
          let expected = rows r in
          on_writer_domain (fun () ->
              let rng = Rng.create ~seed:((seed * 1000) + round) () in
              gc_round rng r ~live ~next_key);
          let after = rows r in
          if after <> expected then
            Alcotest.failf
              "seed %d round %d: snapshot drifted (%d rows -> %d rows)" seed
              round (List.length expected) (List.length after))
    done;
    (* No snapshot held: GC may now prune everything behind the clock,
       and a fresh snapshot must agree with the live state. *)
    ignore (Mvcc.gc [ r ]);
    let live_rows = rows r in
    let snap_rows = Version_store.with_snapshot (fun _ -> rows r) in
    if snap_rows <> live_rows then
      Alcotest.failf "seed %d: post-GC snapshot disagrees with live state" seed;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: model row count" seed)
      (Hashtbl.length live) (List.length live_rows)
  done;
  let st = Version_store.stats () in
  Alcotest.(check bool) "GC reclaimed something across the run" true
    (st.Version_store.st_versions_reclaimed > 0)

(* --- read-only classification edges -------------------------------------- *)

let parse_one sql =
  match Parser.parse sql with
  | Ok [ s ] -> s
  | Ok l -> Alcotest.failf "%S: %d statements" sql (List.length l)
  | Error e -> Alcotest.fail e

let test_read_only_edges () =
  let ro sql = Ast.is_read_only (parse_one sql) in
  Alcotest.(check bool) "SELECT" true (ro "SELECT K FROM T;");
  Alcotest.(check bool) "EXPLAIN" true (ro "EXPLAIN SELECT K FROM T;");
  Alcotest.(check bool) "EXPLAIN ANALYZE" true
    (ro "EXPLAIN ANALYZE SELECT K FROM T;");
  Alcotest.(check bool) "UPDATE is not" false
    (ro "UPDATE T SET V = 1 WHERE K = 1;");
  Alcotest.(check bool) "BEGIN is not" false (ro "BEGIN;");
  (* a read-only prepared statement stays read-only once bound *)
  let stmt = parse_one "SELECT V FROM T WHERE K = ?;" in
  Alcotest.(check int) "one parameter" 1 (Ast.param_count stmt);
  match Ast.substitute_params stmt [ Ast.L_int 42 ] with
  | Ok bound ->
      Alcotest.(check bool) "bound SELECT classifies Read" true
        (Ast.is_read_only bound)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "mmdb_mvcc"
    [
      ( "snapshots",
        [
          Alcotest.test_case "repeatable read within a statement" `Quick
            test_repeatable_read;
          Alcotest.test_case "no dirty reads of an in-flight writer" `Quick
            test_no_dirty_reads;
          Alcotest.test_case "abort leaves no visible versions" `Quick
            test_abort_invisible;
          Alcotest.test_case "GC never reclaims what a snapshot sees" `Quick
            test_gc_respects_snapshots;
        ] );
      ( "classification",
        [
          Alcotest.test_case "read-only edges" `Quick test_read_only_edges;
        ] );
    ]
