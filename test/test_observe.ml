(* Observability tests: the cardinality-feedback store, the Prometheus
   exposition, workload capture (normalization, rotation, parameter
   round-trips) and an in-process capture -> replay loop that must come
   back clean. *)

open Mmdb_net
module Feedback = Mmdb_core.Feedback

(* --- cardinality feedback ---------------------------------------------- *)

let test_feedback_err () =
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (Feedback.err ~est:10 ~actual:10);
  Alcotest.(check (float 1e-9)) "over" 10.0 (Feedback.err ~est:100 ~actual:10);
  Alcotest.(check (float 1e-9)) "under" 10.0 (Feedback.err ~est:10 ~actual:100);
  (* zero rows clamp to one: no infinities out of empty results *)
  Alcotest.(check (float 1e-9)) "zero actual" 7.0 (Feedback.err ~est:7 ~actual:0);
  Alcotest.(check (float 1e-9)) "zero both" 1.0 (Feedback.err ~est:0 ~actual:0)

let test_feedback_estimate_warmup () =
  Feedback.reset ();
  let key = "sel:T:scan:eq" in
  Feedback.observe ~key ~est:10 ~actual:100;
  Alcotest.(check (option int)) "1 obs: no signal" None (Feedback.estimate ~key);
  Feedback.observe ~key ~est:10 ~actual:100;
  Alcotest.(check (option int)) "2 obs: no signal" None (Feedback.estimate ~key);
  Feedback.observe ~key ~est:10 ~actual:100;
  Alcotest.(check (option int))
    "3 obs: average actual" (Some 100) (Feedback.estimate ~key);
  Alcotest.(check (option int))
    "unknown key" None (Feedback.estimate ~key:"sel:nowhere");
  Alcotest.(check int) "observations counted" 3 (Feedback.total_observations ())

let test_feedback_worst () =
  Feedback.reset ();
  Feedback.observe ~key:"good" ~est:100 ~actual:100;
  Feedback.observe ~key:"bad" ~est:1 ~actual:1000;
  Feedback.observe ~key:"middling" ~est:10 ~actual:50;
  (match Feedback.worst () with
  | { Feedback.fb_key = "bad"; fb_worst_err; fb_last_est; fb_last_actual; _ }
    :: rest ->
      Alcotest.(check (float 1e-9)) "worst ratio" 1000.0 fb_worst_err;
      Alcotest.(check int) "last est" 1 fb_last_est;
      Alcotest.(check int) "last actual" 1000 fb_last_actual;
      (match rest with
      | { Feedback.fb_key = "middling"; _ } :: _ -> ()
      | _ -> Alcotest.fail "second-worst must follow")
  | _ -> Alcotest.fail "worst misestimate must rank first");
  Alcotest.(check int) "limit" 1 (List.length (Feedback.worst ~limit:1 ()));
  Feedback.reset ();
  Alcotest.(check int) "reset empties" 0 (List.length (Feedback.worst ()))

let test_feedback_bounded () =
  Feedback.reset ();
  for i = 1 to 1000 do
    Feedback.observe ~key:(Printf.sprintf "shape-%d" i) ~est:1 ~actual:i
  done;
  (* 256 distinct shapes plus at most one catch-all *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded (size %d)" (Feedback.size ()))
    true
    (Feedback.size () <= 257);
  Alcotest.(check int) "no observation dropped" 1000
    (Feedback.total_observations ());
  Feedback.reset ()

(* --- Prometheus exposition --------------------------------------------- *)

let lines_of s = String.split_on_char '\n' s

let has_line ~prefix text =
  List.exists (fun l -> String.starts_with ~prefix l) (lines_of text)

let sample_value ~name text =
  List.find_map
    (fun l ->
      if String.starts_with ~prefix:(name ^ " ") l then
        float_of_string_opt
          (String.sub l (String.length name + 1)
             (String.length l - String.length name - 1))
      else None)
    (lines_of text)

let test_prometheus_render () =
  let m = Metrics.create () in
  Metrics.conn_accepted m;
  Metrics.request ~kind:"select" m ~latency:0.002;
  Metrics.request ~kind:"insert" m ~latency:0.010;
  Metrics.request ~kind:"select" m ~latency:0.0005;
  Metrics.error m;
  Metrics.shed m;
  Metrics.statement_captured m;
  let text = Metrics.prometheus m ~active:3 ~readers:2 ~domains:4 in
  List.iter
    (fun family ->
      Alcotest.(check bool) ("TYPE for " ^ family) true
        (has_line ~prefix:("# TYPE " ^ family ^ " ") text);
      Alcotest.(check bool) ("HELP for " ^ family) true
        (has_line ~prefix:("# HELP " ^ family ^ " ") text))
    [
      "mmdb_requests_total"; "mmdb_errors_total"; "mmdb_shed_total";
      "mmdb_captured_statements_total"; "mmdb_uptime_seconds";
      "mmdb_active_connections"; "mmdb_request_latency_seconds";
    ];
  Alcotest.(check (option (float 1e-9)))
    "request counter" (Some 3.0)
    (sample_value ~name:"mmdb_requests_total" text);
  Alcotest.(check (option (float 1e-9)))
    "captured counter" (Some 1.0)
    (sample_value ~name:"mmdb_captured_statements_total" text);
  Alcotest.(check (option (float 1e-9)))
    "active gauge" (Some 3.0)
    (sample_value ~name:"mmdb_active_connections" text);
  (* the latency histogram: cumulative buckets, and the +Inf bucket
     equals the _count sample *)
  let buckets =
    List.filter_map
      (fun l ->
        if
          String.starts_with ~prefix:"mmdb_request_latency_seconds_bucket{" l
        then
          match String.rindex_opt l ' ' with
          | Some i ->
              float_of_string_opt
                (String.sub l (i + 1) (String.length l - i - 1))
          | None -> None
        else None)
      (lines_of text)
  in
  Alcotest.(check bool) "has buckets" true (List.length buckets >= 2);
  ignore
    (List.fold_left
       (fun prev v ->
         Alcotest.(check bool) "buckets cumulative" true (v >= prev);
         v)
       0.0 buckets);
  let count = sample_value ~name:"mmdb_request_latency_seconds_count" text in
  Alcotest.(check (option (float 1e-9)))
    "+Inf bucket = count"
    (Some (List.nth buckets (List.length buckets - 1)))
    count;
  (* no line may start with a bare '#' other than HELP/TYPE *)
  List.iter
    (fun l ->
      if String.starts_with ~prefix:"#" l then
        Alcotest.(check bool) ("comment is HELP/TYPE: " ^ l) true
          (String.starts_with ~prefix:"# HELP " l
          || String.starts_with ~prefix:"# TYPE " l))
    (lines_of text)

(* --- capture: normalization, parameters, rotation ----------------------- *)

let test_normalize_sql () =
  let n = Capture.normalize_sql in
  Alcotest.(check string) "whitespace collapses" "SELECT 1;"
    (n "  SELECT\n\t 1;  ");
  Alcotest.(check string) "leading comment stripped" "SELECT * FROM T;"
    (n "-- header comment\nSELECT * FROM T;");
  Alcotest.(check string) "trailing comment stripped" "SELECT 1;"
    (n "SELECT 1; -- trailing");
  Alcotest.(check string) "comment mid-statement" "SELECT A FROM T;"
    (n "SELECT A -- pick a column\nFROM T;");
  Alcotest.(check string) "dashes inside quotes survive"
    "SELECT '--not a comment' FROM T;"
    (n "SELECT '--not a comment' FROM T;");
  Alcotest.(check string) "spaces inside quotes survive"
    "INSERT INTO T VALUES ('a  b');"
    (n "INSERT  INTO T\nVALUES ('a  b');");
  Alcotest.(check string) "comment-only input is empty" "" (n "-- nothing\n")

let test_capture_params_roundtrip () =
  let open Mmdb_storage in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Fmt.str "value %a round-trips" Value.pp v)
        true
        (Value.equal v (Capture.value_of_json (Capture.value_to_json v))))
    [
      Value.Int 42; Value.Int min_int; Value.Float 1.5; Value.Str "x";
      Value.Str ""; Value.Bool true; Value.Bool false; Value.Null;
    ];
  (* structured JSON degrades to Null rather than exploding *)
  match Capture.value_of_json (Mmdb_util.Json.Obj []) with
  | Value.Null -> ()
  | v -> Alcotest.failf "expected Null, got %s" (Value.to_string v)

let test_capture_rotation () =
  let path = Filename.temp_file "mmdb_capture" ".jsonl" in
  let rotated = path ^ ".1" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove rotated with Sys_error _ -> ())
    (fun () ->
      let c = Capture.create ~max_bytes:4096 ~path () in
      for i = 1 to 50 do
        let sql =
          Printf.sprintf "INSERT INTO KV VALUES (%d, %s);" i
            (String.make 120 '9')
        in
        Capture.record c ~ts:(float_of_int i) ~session:1 ~kind:"insert" ~sql
          ~elapsed_ms:0.1 ~rows:0 ~status:"ok" ~snapshot:(-1) ()
      done;
      Capture.close c;
      Alcotest.(check int) "all records counted" 50 (Capture.count c);
      Alcotest.(check bool) "rotated file exists" true (Sys.file_exists rotated);
      let size p = (Unix.stat p).Unix.st_size in
      Alcotest.(check bool) "current file within bound" true (size path <= 4096);
      Alcotest.(check bool) "rotated file within bound" true
        (size rotated <= 4096);
      (* rotation is single-level, so older generations are clobbered —
         but the two surviving files must hold a contiguous tail of the
         stream, ending at the newest record *)
      let parsed p =
        match Replay.load p with
        | Ok (records, skipped) ->
            Alcotest.(check int) ("no skips in " ^ p) 0 skipped;
            List.map
              (fun r ->
                Scanf.sscanf r.Replay.r_sql "INSERT INTO KV VALUES (%d,"
                  Fun.id)
              records
        | Error m -> Alcotest.fail m
      in
      let tail = parsed rotated @ parsed path in
      Alcotest.(check bool) "both generations non-empty" true
        (List.length tail >= 2);
      List.iteri
        (fun off i ->
          Alcotest.(check int) "contiguous tail"
            (50 - List.length tail + 1 + off)
            i)
        tail)

(* Regression: a failing rotation (rename target unwritable) must not
   lose records.  The old code closed the live channel first and
   re-opened the path with O_TRUNC, so a failed rename clobbered every
   buffered record; now the rename goes first and on failure the sink
   keeps appending past the bound, bumping [rotation_failed]. *)
let test_capture_rotation_failure () =
  let path = Filename.temp_file "mmdb_capture" ".jsonl" in
  let rotated = path ^ ".1" in
  (* a non-empty directory at the rename target makes Sys.rename fail *)
  Unix.mkdir rotated 0o755;
  let blocker = Filename.concat rotated "keep" in
  let oc = open_out blocker in
  output_string oc "x";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove blocker with Sys_error _ -> ());
      (try Unix.rmdir rotated with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let failures_before = Capture.rotation_failed () in
      let c = Capture.create ~max_bytes:1024 ~path () in
      for i = 1 to 50 do
        let sql =
          Printf.sprintf "INSERT INTO KV VALUES (%d, %s);" i
            (String.make 120 '9')
        in
        Capture.record c ~ts:(float_of_int i) ~session:1 ~kind:"insert" ~sql
          ~elapsed_ms:0.1 ~rows:0 ~status:"ok" ~snapshot:(-1) ()
      done;
      Capture.close c;
      Alcotest.(check bool) "failures counted" true
        (Capture.rotation_failed () > failures_before);
      (* every record is still on disk, in order, despite the bound *)
      match Replay.load path with
      | Error m -> Alcotest.fail m
      | Ok (records, skipped) ->
          Alcotest.(check int) "no skips" 0 skipped;
          Alcotest.(check int) "no record lost" 50 (List.length records);
          List.iteri
            (fun off r ->
              Alcotest.(check int) "in order" (off + 1)
                (Scanf.sscanf r.Replay.r_sql "INSERT INTO KV VALUES (%d,"
                   Fun.id))
            records)

(* --- protocol: METRICS request / response ------------------------------- *)

let test_metrics_protocol_roundtrip () =
  let strip_len frame = String.sub frame 4 (String.length frame - 4) in
  (match
     Protocol.decode_request (strip_len (Protocol.encode_request Protocol.Metrics))
   with
  | Ok Protocol.Metrics -> ()
  | Ok _ -> Alcotest.fail "METRICS decoded as something else"
  | Error m -> Alcotest.fail m);
  let text = "# TYPE mmdb_up gauge\nmmdb_up 1\n" in
  match
    Protocol.decode_response
      (strip_len (Protocol.encode_response (Protocol.Metrics_text text)))
  with
  | Ok (Protocol.Metrics_text got) ->
      Alcotest.(check string) "payload survives" text got
  | Ok _ -> Alcotest.fail "METRICS text decoded as something else"
  | Error m -> Alcotest.fail m

(* --- end to end: capture a session, replay it clean --------------------- *)

let expect_ok c sql =
  match Client.query c sql with
  | Ok (Protocol.Error (code, msg)) ->
      Alcotest.fail
        (Printf.sprintf "%S failed (%s): %s" sql
           (Protocol.err_code_name code) msg)
  | Ok resp -> resp
  | Error m -> Alcotest.fail (Printf.sprintf "%S transport error: %s" sql m)

let connect srv =
  match Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () with
  | Ok c -> c
  | Error m -> Alcotest.fail ("connect failed: " ^ m)

let test_capture_replay_e2e () =
  Feedback.reset ();
  let capture_path = Filename.temp_file "mmdb_e2e" ".jsonl" in
  Sys.remove capture_path;
  Fun.protect
    ~finally:(fun () ->
      try Sys.remove capture_path with Sys_error _ -> ())
    (fun () ->
      (* phase 1: drive a capturing server with a self-contained workload,
         errors included *)
      let config =
        {
          Server.default_config with
          Server.port = 0;
          request_timeout = 10.0;
          idle_timeout = 0.0;
          capture = Some capture_path;
        }
      in
      let db = Mmdb_core.Db.create () in
      let srv = Server.start ~config db in
      let statements = ref 0 in
      Fun.protect
        ~finally:(fun () -> Server.shutdown srv)
        (fun () ->
          let c = connect srv in
          let run sql =
            incr statements;
            ignore (expect_ok c sql)
          in
          run "CREATE TABLE KV (K int PRIMARY KEY, V int);";
          run "CREATE INDEX kv_v ON KV (V) USING ttree;";
          for i = 1 to 20 do
            run (Printf.sprintf "INSERT INTO KV VALUES (%d, %d);" i (i * 10))
          done;
          (* a prepared execution: replay must re-prepare and bind *)
          (match Client.prepare c "INSERT INTO KV VALUES (?, ?);" with
          | Ok (id, _) ->
              List.iter
                (fun k ->
                  incr statements;
                  match
                    Client.exec_prepared c id
                      [ Mmdb_storage.Value.Int k; Mmdb_storage.Value.Int 0 ]
                  with
                  | Ok (Protocol.Error (code, msg)) ->
                      Alcotest.failf "prepared insert failed (%s): %s"
                        (Protocol.err_code_name code) msg
                  | Ok _ -> ()
                  | Error m -> Alcotest.fail m)
                [ 100; 101; 102 ]
          | Error m -> Alcotest.fail ("prepare failed: " ^ m));
          run "SELECT K FROM KV WHERE V BETWEEN 50 AND 120;";
          run "SELECT COUNT(*) FROM KV;";
          run "UPDATE KV SET V = 999 WHERE K = 7;";
          run "DELETE FROM KV WHERE K = 9;";
          (* a captured error must replay as an error *)
          incr statements;
          (match Client.query c "INSERT INTO KV VALUES (1, 1);" with
          | Ok (Protocol.Error _) -> ()
          | Ok _ -> Alcotest.fail "duplicate key must error"
          | Error m -> Alcotest.fail m);
          run "SELECT K, V FROM KV WHERE K = 1;";
          Client.close c);
      (* phase 2: the capture replays clean against a fresh server *)
      (match Replay.load capture_path with
      | Ok (records, 0) ->
          Alcotest.(check int) "every statement captured" !statements
            (List.length records)
      | Ok (_, skipped) -> Alcotest.failf "%d malformed capture lines" skipped
      | Error m -> Alcotest.fail m);
      let config2 =
        {
          Server.default_config with
          Server.port = 0;
          request_timeout = 10.0;
          idle_timeout = 0.0;
        }
      in
      let db2 = Mmdb_core.Db.create () in
      let srv2 = Server.start ~config:config2 db2 in
      Fun.protect
        ~finally:(fun () -> Server.shutdown srv2)
        (fun () ->
          let c = connect srv2 in
          (match Replay.run_file c capture_path with
          | Ok outcome ->
              Alcotest.(check int) "statements replayed" !statements
                outcome.Replay.o_statements;
              Alcotest.(check int) "row mismatches" 0
                outcome.Replay.o_row_mismatches;
              Alcotest.(check int) "status mismatches" 0
                outcome.Replay.o_status_mismatches;
              Alcotest.(check int) "transport errors" 0
                outcome.Replay.o_transport_errors;
              Alcotest.(check bool) "clean" true (Replay.clean outcome);
              let report = Replay.render outcome in
              Alcotest.(check bool) "report says clean" true
                (let needle = "replay clean" in
                 let n = String.length needle in
                 let rec find i =
                   i + n <= String.length report
                   && (String.sub report i n = needle || find (i + 1))
                 in
                 find 0)
          | Error m -> Alcotest.fail m);
          Client.close c))

let () =
  Alcotest.run "observe"
    [
      ( "feedback",
        [
          Alcotest.test_case "symmetric error ratio" `Quick test_feedback_err;
          Alcotest.test_case "estimate needs warm-up" `Quick
            test_feedback_estimate_warmup;
          Alcotest.test_case "worst misestimates rank" `Quick
            test_feedback_worst;
          Alcotest.test_case "bounded shape table" `Quick test_feedback_bounded;
        ] );
      ( "prometheus",
        [ Alcotest.test_case "exposition renders" `Quick test_prometheus_render ] );
      ( "capture",
        [
          Alcotest.test_case "normalize_sql" `Quick test_normalize_sql;
          Alcotest.test_case "parameter json round-trip" `Quick
            test_capture_params_roundtrip;
          Alcotest.test_case "size-bounded rotation" `Quick
            test_capture_rotation;
          Alcotest.test_case "failed rotation loses nothing" `Quick
            test_capture_rotation_failure;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "METRICS roundtrip" `Quick
            test_metrics_protocol_roundtrip;
        ] );
      ( "replay",
        [
          Alcotest.test_case "capture then replay clean" `Quick
            test_capture_replay_e2e;
        ] );
    ]
