(* Parallel-execution equivalence suite.

   The parallel operator paths must be observationally equivalent to the
   sequential ones: the same multiset of result tuples (tuple pointers,
   not copies), counters that merge to the sequential totals (exactly for
   scans and hash projection, within bookkeeping tolerance for the
   partitioned join and parallel sorts), at every pool size.  On top of
   the operators, the executor queue's single-writer/parallel-reader
   discipline and the server's read-only fan-out are checked end to end
   against serial references. *)

open Mmdb_util
open Mmdb_storage
open Mmdb_core
open Mmdb_net

let pool_sizes = [ 1; 2; 8 ]

(* Materialize a temp list into a sorted list of value rows for
   order-insensitive multiset comparison. *)
let multiset tl = List.sort compare (List.map Array.to_list (Temp_list.materialize tl))

let with_pool size f =
  let pool = Domain_pool.create ~size () in
  Fun.protect ~finally:(fun () -> Domain_pool.stop pool) (fun () -> f pool)

let spec n dup_pct = { Workload.cardinality = n; dup_pct; dup_stddev = 0.8 }

let make_pair ?(n = 6_000) ?(dup = 40.0) ~seed () =
  let rng = Rng.create ~seed () in
  Workload.relation_pair ~with_ttree:false rng ~outer:(spec n dup)
    ~inner:(spec n dup) ~semijoin_sel:80.0 ()

let counted f =
  Counters.reset ();
  Counters.with_counters f

(* --- partition-parallel sequential scan --------------------------------- *)

let test_scan_equivalence () =
  let r1, _ = make_pair ~seed:101 () in
  let n = Relation.count r1 in
  (* join-column values are drawn from a large integer domain; cut it
     roughly in half so the scan keeps a non-trivial subset *)
  let predicates =
    [
      Select.Between (Workload.jcol, Value.Int 0, Value.Int 500_000_000);
      Select.Filter (fun tup -> match Tuple.get tup Workload.seq_col with
        | Value.Int s -> s mod 3 <> 0
        | _ -> false);
    ]
  in
  let seq_result, seq_counters =
    counted (fun () -> Select.run r1 ~path:Select.Sequential_scan ~predicates)
  in
  let seq_rows = multiset seq_result in
  Alcotest.(check bool) "reference scan selects something" true
    (List.length seq_rows > 0 && List.length seq_rows < n);
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          let par_result, par_counters =
            counted (fun () ->
                Select.run ~pool r1 ~path:Select.Sequential_scan ~predicates)
          in
          Alcotest.(check bool)
            (Printf.sprintf "size %d: same row multiset" size)
            true
            (multiset par_result = seq_rows);
          (* the parallel scan does the same tuple accesses, so merged
             counters equal the sequential totals exactly *)
          Alcotest.(check bool)
            (Printf.sprintf "size %d: counters merge exactly" size)
            true
            (par_counters = seq_counters)))
    pool_sizes

(* --- partitioned hash join ---------------------------------------------- *)

let test_hash_join_equivalence () =
  let r1, r2 = make_pair ~seed:102 () in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let seq_result, seq_counters =
    counted (fun () -> Join.hash_join ~outer ~inner ())
  in
  let seq_rows = multiset seq_result in
  Alcotest.(check bool) "reference join produces pairs" true
    (List.length seq_rows > 0);
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          let par_result, par_counters =
            counted (fun () -> Join.hash_join ~pool ~outer ~inner ())
          in
          Alcotest.(check bool)
            (Printf.sprintf "size %d: same pair multiset" size)
            true
            (multiset par_result = seq_rows);
          if size = 1 then
            (* a 1-domain pool takes the sequential code path verbatim *)
            Alcotest.(check bool) "size 1: counters identical" true
              (par_counters = seq_counters)
          else begin
            (* partitioned build+probe touches every tuple the same number
               of times but sees shorter chains, so counters stay within a
               small factor of the sequential run *)
            let within lo hi got name =
              if got < lo || got > hi then
                Alcotest.failf "size %d: %s %d outside [%d, %d]" size name
                  got lo hi
            in
            let s = seq_counters.Counters.hash_calls in
            within (s / 4) (4 * s) par_counters.Counters.hash_calls
              "hash calls";
            let s = seq_counters.Counters.comparisons in
            within (s / 4) (4 * s) par_counters.Counters.comparisons
              "comparisons"
          end))
    pool_sizes

(* --- parallel sort-merge join ------------------------------------------- *)

let test_sort_merge_equivalence () =
  let r1, r2 = make_pair ~seed:103 () in
  let outer = { Join.rel = r1; col = Workload.jcol } in
  let inner = { Join.rel = r2; col = Workload.jcol } in
  let seq_rows = multiset (Join.sort_merge ~outer ~inner ()) in
  Alcotest.(check bool) "reference join produces pairs" true
    (List.length seq_rows > 0);
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          let par_rows = multiset (Join.sort_merge ~pool ~outer ~inner ()) in
          Alcotest.(check bool)
            (Printf.sprintf "size %d: same pair multiset" size)
            true (par_rows = seq_rows)))
    pool_sizes

(* --- parallel projection ------------------------------------------------ *)

let test_project_equivalence () =
  let r1, _ = make_pair ~seed:104 ~dup:70.0 () in
  let input = Temp_list.of_relation r1 in
  let jcol_label =
    List.nth (Descriptor.labels (Temp_list.descriptor input)) Workload.jcol
  in
  List.iter
    (fun method_ ->
      let name = Project.method_name method_ in
      let seq_result, seq_counters =
        counted (fun () -> Project.run method_ input [ jcol_label ])
      in
      let seq_rows = multiset seq_result in
      Alcotest.(check bool)
        (name ^ ": reference deduplicates")
        true
        (List.length seq_rows > 0
        && List.length seq_rows < Temp_list.length input);
      List.iter
        (fun size ->
          with_pool size (fun pool ->
              let par_result, par_counters =
                counted (fun () -> Project.run ~pool method_ input [ jcol_label ])
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s size %d: same distinct multiset" name size)
                true
                (multiset par_result = seq_rows);
              if method_ = Project.Hashing then
                (* hash routing preserves bucket structure, so the merged
                   hash/comparison counts are exactly the sequential ones *)
                Alcotest.(check bool)
                  (Printf.sprintf "%s size %d: counters merge exactly" name
                     size)
                  true
                  (par_counters.Counters.hash_calls
                   = seq_counters.Counters.hash_calls
                  && par_counters.Counters.comparisons
                     = seq_counters.Counters.comparisons)))
        pool_sizes)
    [ Project.Sort_scan; Project.Hashing ]

(* --- executor queue: single writer, parallel readers --------------------- *)

let test_exec_queue_reader_overlap () =
  let q = Exec_queue.create ~readers:4 () in
  let m = Mutex.create () in
  let active_reads = ref 0 in
  let max_concurrent = ref 0 in
  let writer_active = ref false in
  let violations = ref 0 in
  let locked f = Mutex.lock m; let r = f () in Mutex.unlock m; r in
  let write_job () =
    locked (fun () ->
        if !active_reads > 0 then incr violations;
        writer_active := true);
    Thread.delay 0.002;
    locked (fun () -> writer_active := false)
  in
  let read_job () =
    locked (fun () ->
        if !writer_active then incr violations;
        incr active_reads;
        if !active_reads > !max_concurrent then
          max_concurrent := !active_reads);
    Thread.delay 0.005;
    locked (fun () -> decr active_reads)
  in
  let promises = ref [] in
  let push kind job =
    promises := Exec_queue.submit q ~kind job :: !promises
  in
  for _ = 1 to 3 do
    push Exec_queue.Write write_job;
    for _ = 1 to 6 do
      push Exec_queue.Read read_job
    done
  done;
  push Exec_queue.Write write_job;
  List.iter
    (fun p ->
      match Exec_queue.wait p with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("job failed: " ^ Printexc.to_string e))
    (List.rev !promises);
  Exec_queue.stop q;
  Alcotest.(check int) "no read/write overlap" 0 !violations;
  Alcotest.(check bool) "readers overlapped each other" true
    (!max_concurrent >= 2)

(* --- server: parallel read-only clients vs a serial reference ------------ *)

let test_config =
  {
    Server.default_config with
    Server.port = 0;
    request_timeout = 10.0;
    idle_timeout = 0.0;
  }

let with_server ?(config = test_config) f =
  let db = Db.create () in
  let srv = Server.start ~config db in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) (fun () -> f srv)

let connect srv =
  match Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () with
  | Ok c -> c
  | Error m -> Alcotest.fail ("connect failed: " ^ m)

let expect_ok c sql =
  match Client.query c sql with
  | Ok (Protocol.Error (code, msg)) ->
      Alcotest.fail
        (Printf.sprintf "%S failed (%s): %s" sql
           (Protocol.err_code_name code) msg)
  | Ok resp -> resp
  | Error m -> Alcotest.fail (Printf.sprintf "%S transport error: %s" sql m)

let rows_of = function
  | Protocol.Results { rows; _ } -> rows
  | r ->
      Alcotest.fail (Fmt.str "expected a result set, got %a" Protocol.pp_response r)

let test_server_parallel_readers () =
  with_server (fun srv ->
      let setup = connect srv in
      ignore (expect_ok setup "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      for i = 1 to 64 do
        ignore
          (expect_ok setup
             (Printf.sprintf "INSERT INTO KV VALUES (%d, %d);" i (i * 10)))
      done;
      let queries =
        [
          "SELECT K, V FROM KV;";
          "SELECT V FROM KV WHERE K = 7;";
          "SELECT K FROM KV WHERE V = 420;";
        ]
      in
      (* serial reference answers, computed before the concurrent phase *)
      let reference =
        List.map
          (fun q -> (q, List.sort compare (rows_of (expect_ok setup q))))
          queries
      in
      let n_clients = 6 and rounds = 8 in
      let failures = Mutex.create () and failed = ref [] in
      let worker () =
        let c = connect srv in
        for r = 0 to rounds - 1 do
          List.iteri
            (fun qi (q, expected) ->
              match Client.query c q with
              | Ok (Protocol.Results { rows; _ })
                when List.sort compare rows = expected ->
                  ()
              | Ok resp ->
                  Mutex.lock failures;
                  failed :=
                    Printf.sprintf "round %d query %d: %s" r qi
                      (Fmt.str "%a" Protocol.pp_response resp)
                    :: !failed;
                  Mutex.unlock failures
              | Error m ->
                  Mutex.lock failures;
                  failed := ("transport: " ^ m) :: !failed;
                  Mutex.unlock failures)
            reference
        done;
        ignore (Client.quit c)
      in
      let threads = List.init n_clients (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      (match !failed with
      | [] -> ()
      | e :: _ ->
          Alcotest.failf "%d mismatches under concurrency, first: %s"
            (List.length !failed) e);
      (* the read-only statements really took the parallel-reader path *)
      let s = Metrics.snapshot (Server.metrics srv) in
      Alcotest.(check bool) "read jobs dispatched" true
        (s.Metrics.s_ro_jobs >= n_clients * rounds);
      (* writes and reads both flowed through, and the database is intact *)
      let final = List.sort compare (rows_of (expect_ok setup "SELECT K, V FROM KV;")) in
      Alcotest.(check int) "all inserts visible after the storm" 64
        (List.length final))

let test_server_statement_cache () =
  with_server (fun srv ->
      let c = connect srv in
      ignore (expect_ok c "CREATE TABLE T (A int PRIMARY KEY);");
      ignore (expect_ok c "INSERT INTO T VALUES (1);");
      let q = "SELECT A FROM T;" in
      for _ = 1 to 3 do
        Alcotest.(check int) "stable answer" 1
          (List.length (rows_of (expect_ok c q)))
      done;
      let s = Metrics.snapshot (Server.metrics srv) in
      Alcotest.(check bool)
        (Printf.sprintf "cache hits (%d) >= 2" s.Metrics.s_cache_hits)
        true
        (s.Metrics.s_cache_hits >= 2);
      Alcotest.(check bool) "misses recorded too" true
        (s.Metrics.s_cache_misses >= 1))

let () =
  Alcotest.run "mmdb_parallel"
    [
      ( "operators",
        [
          Alcotest.test_case "scan equivalence" `Quick test_scan_equivalence;
          Alcotest.test_case "hash join equivalence" `Quick
            test_hash_join_equivalence;
          Alcotest.test_case "sort-merge equivalence" `Quick
            test_sort_merge_equivalence;
          Alcotest.test_case "projection equivalence" `Quick
            test_project_equivalence;
        ] );
      ( "exec_queue",
        [
          Alcotest.test_case "reader overlap, writer exclusion" `Quick
            test_exec_queue_reader_overlap;
        ] );
      ( "server",
        [
          Alcotest.test_case "parallel readers vs serial reference" `Quick
            test_server_parallel_readers;
          Alcotest.test_case "statement cache" `Quick
            test_server_statement_cache;
        ] );
    ]
