(* Cost-based planner, column statistics, and the index advisor.

   Covers the regression for catch-all feedback poisoning (the 257th
   shape must never inherit the overflow bucket's average), the
   column-statistics estimators (distinct within linear-counting
   tolerance, min/max tracking updates and deletes, MVCC-snapshot
   consistency), cost-vs-rule planner equivalence on identical result
   multisets, EXPLAIN naming the planner and the losing candidates, and
   the advisor's create / drop / snapshot-guard / lost-index behaviors. *)

open Mmdb_storage
open Mmdb_core
module Histogram = Mmdb_util.Histogram

let with_planner cost f =
  let was = Optimizer.cost_based () in
  Optimizer.set_cost_based cost;
  Fun.protect ~finally:(fun () -> Optimizer.set_cost_based was) f

let with_mvcc f =
  let was = Version_store.enabled () in
  Version_store.set_enabled true;
  Fun.protect ~finally:(fun () -> Version_store.set_enabled was) f

(* --- feedback: catch-all poisoning regression --------------------------- *)

(* The overflow bucket aggregates arbitrary unrelated shapes; before the
   fix, [estimate] answered for it like any other key, so every shape
   past the 256-key cap inherited one blended average. *)
let test_overflow_estimate_poisoning () =
  Feedback.reset ();
  (* fill the table: 256 distinct warm shapes, each honestly at 10 rows *)
  for i = 1 to 256 do
    for _ = 1 to 3 do
      Feedback.observe ~key:(Printf.sprintf "shape-%d" i) ~est:10 ~actual:10
    done
  done;
  (* shape 257 folds into the catch-all with a wildly different actual *)
  for _ = 1 to 5 do
    Feedback.observe ~key:"shape-257" ~est:10 ~actual:100_000
  done;
  Alcotest.(check bool) "overflow bucket exists" true
    (List.exists
       (fun (e : Feedback.entry) -> String.equal e.fb_key Feedback.overflow_key)
       (Feedback.entries ()));
  (* the catch-all never answers: neither for itself... *)
  Alcotest.(check (option int)) "no estimate from the catch-all" None
    (Feedback.estimate ~key:Feedback.overflow_key);
  (* ...nor for the folded shape, which has no entry of its own *)
  Alcotest.(check (option int)) "folded shape gets no estimate" None
    (Feedback.estimate ~key:"shape-257");
  (* real per-shape entries still answer *)
  Alcotest.(check (option int)) "warm shape still answers" (Some 10)
    (Feedback.estimate ~key:"shape-1");
  Feedback.reset ()

(* --- column statistics --------------------------------------------------- *)

let kv_schema name =
  Schema.make ~name
    [ Schema.col ~ty:Schema.T_int "K"; Schema.col ~ty:Schema.T_int "V" ]

let mk_kv ?(name = "KV") () =
  Relation.create ~schema:(kv_schema name)
    ~primary:
      {
        Relation.idx_name = name ^ "_pk";
        columns = [| 0 |];
        unique = true;
        structure = Relation.T_tree;
      }
    ()

let ins r k v =
  match Relation.insert r [| Value.Int k; Value.Int v |] with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_stats_distinct_estimate () =
  Column_stats.reset ();
  let r = mk_kv () in
  (* 2000 rows, exactly 100 distinct values in V *)
  for k = 0 to 1999 do
    ignore (ins r k (k mod 100))
  done;
  let s = Column_stats.analyze r ~col:1 in
  Alcotest.(check int) "rows" 2000 s.Column_stats.cs_rows;
  let d = s.Column_stats.cs_distinct in
  if d < 80 || d > 120 then
    Alcotest.failf "distinct estimate %d outside [80, 120] for truth 100" d;
  (* the equality estimate is rows/distinct, never below 1 *)
  let eq = Column_stats.est_eq s in
  if eq < 15 || eq > 25 then
    Alcotest.failf "eq estimate %d outside [15, 25] for truth 20" eq;
  (* a unique column estimates ~1 row per equality probe *)
  let sk = Column_stats.analyze r ~col:0 in
  let eqk = Column_stats.est_eq sk in
  if eqk < 1 || eqk > 3 then
    Alcotest.failf "unique-column eq estimate %d outside [1, 3]" eqk

let test_stats_minmax_updates_deletes () =
  Column_stats.reset ();
  let r = mk_kv () in
  for k = 1 to 100 do
    ignore (ins r k (k * 10))
  done;
  let s = Column_stats.analyze r ~col:1 in
  Alcotest.(check (float 1e-9)) "min" 10.0 s.Column_stats.cs_min;
  Alcotest.(check (float 1e-9)) "max" 1000.0 s.Column_stats.cs_max;
  (* shrink the domain: delete the top half, push one value below the
     min (collect first — deleting during the scan would skip tuples) *)
  let victims = ref [] in
  Relation.iter r (fun t ->
      match Tuple.get t 1 with
      | Value.Int v when v > 500 -> victims := t :: !victims
      | _ -> ());
  List.iter (fun t -> ignore (Relation.delete_tuple r t)) !victims;
  (match Relation.lookup_one r [| Value.Int 1 |] with
  | Some t -> (
      match Relation.update_field r t 1 (Value.Int 3) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "key 1 vanished");
  Column_stats.invalidate r;
  let s' = Column_stats.stats_for r ~col:1 in
  Alcotest.(check int) "rows after deletes" 50 s'.Column_stats.cs_rows;
  Alcotest.(check (float 1e-9)) "min after update" 3.0 s'.Column_stats.cs_min;
  Alcotest.(check (float 1e-9)) "max after deletes" 500.0 s'.Column_stats.cs_max;
  (* range estimates follow: everything sits at/below 500 now *)
  let all = Column_stats.est_range s' ~lo:0.0 ~hi:1000.0 in
  if all < 25 || all > 50 then
    Alcotest.failf "range-all estimate %d outside [25, 50] of 50 rows" all;
  Alcotest.(check int) "range outside domain" 1
    (Column_stats.est_range s' ~lo:2000.0 ~hi:3000.0)

(* A stats scan under an MVCC snapshot must describe the snapshot's
   rows, not concurrent committed writes: analyze runs through the same
   diverted Relation.iter as any reader. *)
let test_stats_snapshot_consistency () =
  with_mvcc @@ fun () ->
  Column_stats.reset ();
  let r = mk_kv () in
  Relation.ensure_view r;
  for k = 1 to 64 do
    ignore (ins r k k)
  done;
  Version_store.with_snapshot (fun _ ->
      let inside = Column_stats.analyze r ~col:1 in
      Alcotest.(check int) "snapshot rows" 64 inside.Column_stats.cs_rows;
      Alcotest.(check (float 1e-9)) "snapshot max" 64.0
        inside.Column_stats.cs_max;
      (* a concurrent writer (fresh domain: fresh DLS, no snapshot)
         commits new rows mid-statement *)
      let d =
        Domain.spawn (fun () ->
            Version_store.with_write (fun () ->
                for k = 65 to 128 do
                  ignore (ins r k (k * 100))
                done))
      in
      Domain.join d;
      let again = Column_stats.analyze r ~col:1 in
      Alcotest.(check int) "repeatable rows under snapshot" 64
        again.Column_stats.cs_rows;
      Alcotest.(check (float 1e-9)) "repeatable max under snapshot" 64.0
        again.Column_stats.cs_max);
  (* snapshot released: the full state shows *)
  let after = Column_stats.analyze r ~col:1 in
  Alcotest.(check int) "live rows" 128 after.Column_stats.cs_rows;
  Alcotest.(check (float 1e-9)) "live max" 12800.0 after.Column_stats.cs_max

(* --- cost-based planning ------------------------------------------------- *)

let planner_fixture () =
  let db = Db.create () in
  let dept_schema =
    Schema.make ~name:"Department"
      [ Schema.col ~ty:Schema.T_string "Name"; Schema.col ~ty:Schema.T_int "Id" ]
  in
  let _ = Db.create_relation db ~schema:dept_schema ~primary_key:"Id" in
  for i = 1 to 40 do
    match
      Db.insert db ~rel:"Department"
        [| Value.Str (Printf.sprintf "D%d" i); Value.Int i |]
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  let emp_schema =
    Schema.make ~name:"Employee"
      [
        Schema.col ~ty:Schema.T_string "Name";
        Schema.col ~ty:Schema.T_int "Id";
        Schema.col ~ty:Schema.T_int "Age";
        Schema.col ~ty:Schema.T_int "DeptId";
      ]
  in
  let _ = Db.create_relation db ~schema:emp_schema ~primary_key:"Id" in
  for i = 1 to 400 do
    match
      Db.insert db ~rel:"Employee"
        [|
          Value.Str (Printf.sprintf "E%d" i);
          Value.Int i;
          Value.Int (20 + (i mod 50));
          Value.Int (1 + (i mod 40));
        |]
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  let emp = Db.find_exn db "Employee" in
  (match
     Relation.create_index emp ~idx_name:"by_age" ~columns:[| 2 |]
       ~structure:Relation.Mod_linear_hash
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  db

let sorted_rows db q = List.sort compare (Executor.rows (Executor.query db q))

let equivalence_queries =
  [
    ( "eq select",
      Query.(from "Employee" |> where_eq "Age" (Value.Int 33)) );
    ( "range select",
      Query.(
        from "Employee"
        |> where_between "Age" ~lo:(Value.Int 25) ~hi:(Value.Int 30)) );
    ( "filtered join",
      Query.(
        from "Employee"
        |> where_between "Id" ~lo:(Value.Int 1) ~hi:(Value.Int 50)
        |> join "Department" ~on:("DeptId", "Id")
        |> project [ "Employee.Name"; "Department.Name" ]) );
    ( "unfiltered join distinct",
      Query.(
        from "Employee"
        |> join "Department" ~on:("DeptId", "Id")
        |> project [ "Department.Name" ]
        |> distinct) );
  ]

(* Both planners must produce identical result multisets for every
   query shape: cost-based planning may pick different paths, methods
   and build sides, never different answers. *)
let test_planner_equivalence () =
  Column_stats.reset ();
  Feedback.reset ();
  let db = planner_fixture () in
  List.iter
    (fun (label, q) ->
      let rule = with_planner false (fun () -> sorted_rows db q) in
      let cost = with_planner true (fun () -> sorted_rows db q) in
      Alcotest.(check (list (list string))) label rule cost)
    equivalence_queries

let test_explain_names_planner_and_candidates () =
  Column_stats.reset ();
  Feedback.reset ();
  let db = planner_fixture () in
  let q =
    Query.(
      from "Employee"
      |> where_eq "Age" (Value.Int 33)
      |> join "Department" ~on:("DeptId", "Id"))
  in
  let contains needle hay =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  with_planner true (fun () ->
      let plan = Optimizer.plan db q in
      Alcotest.(check string) "cost planner named" "cost-based"
        plan.Optimizer.p_planner;
      let text = Fmt.str "%a" Optimizer.pp_plan plan in
      Alcotest.(check bool) "EXPLAIN names the planner" true
        (contains "planner: cost-based" text);
      (* the losing candidates show with their costs *)
      Alcotest.(check bool) "access candidates compared" true
        (List.length plan.Optimizer.p_sel_cands >= 2);
      Alcotest.(check bool) "join candidates compared" true
        (List.length plan.Optimizer.p_join_cands >= 2);
      Alcotest.(check bool) "EXPLAIN lists join candidates" true
        (contains "join candidates:" text);
      (* candidate lists are cost-sorted ascending *)
      let ascending l =
        let costs = List.map snd l in
        List.sort compare costs = costs
      in
      Alcotest.(check bool) "access candidates sorted" true
        (ascending plan.Optimizer.p_sel_cands);
      Alcotest.(check bool) "join candidates sorted" true
        (ascending plan.Optimizer.p_join_cands));
  with_planner false (fun () ->
      let plan = Optimizer.plan db q in
      Alcotest.(check string) "rule planner named" "rule-based"
        plan.Optimizer.p_planner;
      let text = Fmt.str "%a" Optimizer.pp_plan plan in
      Alcotest.(check bool) "EXPLAIN names the rule planner" true
        (contains "planner: rule-based" text))

(* The cost planner must prefer the selective hash index over a scan
   (its candidate list proving the scan was costed and lost), and put
   the hash build on the filtered outer when that side is smaller. *)
let test_cost_picks_index_and_build_side () =
  Column_stats.reset ();
  Feedback.reset ();
  let db = planner_fixture () in
  with_planner true @@ fun () ->
  let q = Query.(from "Employee" |> where_eq "Age" (Value.Int 33)) in
  let plan = Optimizer.plan db q in
  (match plan.Optimizer.p_paths with
  | (Select.Hash_lookup "by_age", _) :: _ -> ()
  | (p, _) :: _ ->
      Alcotest.failf "expected by_age hash lookup, got %a" Select.pp_path p
  | [] -> Alcotest.fail "no paths");
  Alcotest.(check bool) "scan was a losing candidate" true
    (List.exists
       (fun (name, _) -> String.equal name "sequential scan")
       plan.Optimizer.p_sel_cands);
  (* selective filter on the outer + larger inner: hash join builds on
     the (filtered) outer side *)
  let qj =
    Query.(
      from "Department"
      |> where_eq "Id" (Value.Int 7)
      |> join "Employee" ~on:("Id", "DeptId"))
  in
  let planj = Optimizer.plan db qj in
  (match planj.Optimizer.p_join with
  | Some (Optimizer.Algorithm Join.Hash_join, _, _) ->
      Alcotest.(check bool) "builds on the filtered outer" true
        planj.Optimizer.p_build_outer
  | Some _ -> () (* another method won outright: nothing to assert *)
  | None -> Alcotest.fail "join expected");
  (* and the result matches the rule planner's *)
  let cost_rows = sorted_rows db qj in
  let rule_rows = with_planner false (fun () -> sorted_rows db qj) in
  Alcotest.(check (list (list string))) "build-outer result equal" rule_rows
    cost_rows

(* --- index advisor -------------------------------------------------------- *)

let advisor_fixture () =
  Feedback.reset ();
  Advisor.reset ();
  Column_stats.reset ();
  let db = Db.create () in
  let schema =
    Schema.make ~name:"Hot"
      [
        Schema.col ~ty:Schema.T_int "Id";
        Schema.col ~ty:Schema.T_int "Grp";
        Schema.col ~ty:Schema.T_int "Load";
      ]
  in
  let _ = Db.create_relation db ~schema ~primary_key:"Id" in
  for i = 1 to 500 do
    match
      Db.insert db ~rel:"Hot"
        [| Value.Int i; Value.Int (i mod 50); Value.Int (i mod 7) |]
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  db

let drive_scans db ~n col v =
  let q = Query.(from "Hot" |> where_eq col (Value.Int v)) in
  for _ = 1 to n do
    ignore (Executor.query db q)
  done

let test_advisor_creates_and_uses_index () =
  let db = advisor_fixture () in
  with_planner true @@ fun () ->
  let hot = Db.find_exn db "Hot" in
  drive_scans db ~n:20 "Grp" 7;
  let actions = Advisor.run db in
  (match actions with
  | [ Advisor.Created ("Hot", idx, _) ] ->
      Alcotest.(check string) "advisor naming" "adv_Hot_Grp" idx;
      Alcotest.(check bool) "index exists" true
        (Relation.find_index hot idx <> None)
  | l ->
      Alcotest.failf "expected one create, got [%s]"
        (String.concat "; " (List.map (Fmt.str "%a" Advisor.pp_action) l)));
  let st = Advisor.stats () in
  Alcotest.(check int) "created counted" 1 st.Advisor.adv_created;
  Alcotest.(check int) "one active" 1 (List.length st.Advisor.adv_active);
  (* the planner now routes the scan shape through the new index... *)
  let q = Query.(from "Hot" |> where_eq "Grp" (Value.Int 7)) in
  let plan = Optimizer.plan db q in
  (match plan.Optimizer.p_paths with
  | (Select.Hash_lookup idx, _) :: _ ->
      Alcotest.(check string) "planner uses the advisor index" "adv_Hot_Grp" idx
  | (p, _) :: _ -> Alcotest.failf "expected hash lookup, got %a" Select.pp_path p
  | [] -> Alcotest.fail "no paths");
  (* ...with identical results, and the relation still validates *)
  Alcotest.(check int) "same answer through the index" 10
    (Temp_list.length (Executor.query db q));
  Alcotest.(check bool) "relation validates with advisor index" true
    (Relation.validate hot = Ok ());
  (* a second run with no new observations creates nothing further *)
  Alcotest.(check int) "idempotent without new scans" 0
    (List.length (Advisor.run db))

let test_advisor_range_gets_ordered_index () =
  let db = advisor_fixture () in
  with_planner true @@ fun () ->
  let q =
    Query.(
      from "Hot" |> where_between "Load" ~lo:(Value.Int 2) ~hi:(Value.Int 4))
  in
  for _ = 1 to 20 do
    ignore (Executor.query db q)
  done;
  match Advisor.run db with
  | [ Advisor.Created ("Hot", "adv_Hot_Load", structure) ] ->
      (* range shapes call for an ordered structure *)
      Alcotest.(check string) "ordered structure for ranges" "t_tree" structure
  | l ->
      Alcotest.failf "expected one t_tree create, got [%s]"
        (String.concat "; " (List.map (Fmt.str "%a" Advisor.pp_action) l))

let test_advisor_drops_stale_index () =
  let db = advisor_fixture () in
  with_planner true @@ fun () ->
  let hot = Db.find_exn db "Hot" in
  drive_scans db ~n:20 "Grp" 7;
  (match Advisor.run db with
  | [ Advisor.Created _ ] -> ()
  | _ -> Alcotest.fail "setup: create expected");
  (* the workload drifts: writes keep landing, reads stop entirely *)
  for round = 1 to 2 do
    for i = 1 to 50 do
      match
        Db.insert db ~rel:"Hot"
          [|
            Value.Int (1000 + (round * 100) + i);
            Value.Int (i mod 50);
            Value.Int 0;
          |]
      with
      | Ok _ -> Advisor.note_write ~rel:"Hot" ()
      | Error e -> Alcotest.fail e
    done;
    ignore (Advisor.run db)
  done;
  (* two unused runs while writes accrued: the index must be gone *)
  Alcotest.(check bool) "advisor index dropped" true
    (Relation.find_index hot "adv_Hot_Grp" = None);
  let st = Advisor.stats () in
  Alcotest.(check int) "drop counted" 1 st.Advisor.adv_dropped;
  Alcotest.(check int) "nothing active" 0 (List.length st.Advisor.adv_active);
  (* queries on the dropped shape still answer via scan: 10 original
     Grp=7 rows plus one per drift round (i = 7 in each batch of 50) *)
  Alcotest.(check int) "scan fallback answers" 12
    (Temp_list.length
       (Executor.query db Query.(from "Hot" |> where_eq "Grp" (Value.Int 7))))

let test_advisor_snapshot_guard () =
  with_mvcc @@ fun () ->
  let db = advisor_fixture () in
  with_planner true @@ fun () ->
  List.iter Relation.ensure_view (Db.relations db);
  drive_scans db ~n:20 "Grp" 7;
  (* under a snapshot the run must refuse: an index built from the
     diverted scan would miss concurrently-live tuples *)
  Version_store.with_snapshot (fun _ ->
      Alcotest.(check int) "no-op under snapshot" 0
        (List.length (Advisor.run db)));
  Alcotest.(check int) "guarded run took no action" 0
    (List.length (Advisor.stats ()).Advisor.adv_active);
  (* outside the snapshot the same pending window applies cleanly *)
  match Advisor.run db with
  | [ Advisor.Created ("Hot", "adv_Hot_Grp", _) ] -> ()
  | l ->
      Alcotest.failf "expected the deferred create, got [%s]"
        (String.concat "; " (List.map (Fmt.str "%a" Advisor.pp_action) l))

(* Recovery replay rebuilds relations without advisor indices; the next
   run must notice the loss, forget the ownership, and carry on instead
   of failing or double-dropping. *)
let test_advisor_survives_lost_index () =
  let db = advisor_fixture () in
  with_planner true @@ fun () ->
  let hot = Db.find_exn db "Hot" in
  drive_scans db ~n:20 "Grp" 7;
  (match Advisor.run db with
  | [ Advisor.Created _ ] -> ()
  | _ -> Alcotest.fail "setup: create expected");
  (* simulate recovery: the in-memory index vanishes out from under the
     advisor's ownership list *)
  (match Relation.drop_index hot ~idx_name:"adv_Hot_Grp" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Advisor.note_write ~rel:"Hot" ();
  ignore (Advisor.run db);
  let st = Advisor.stats () in
  Alcotest.(check int) "ownership forgotten" 0
    (List.length st.Advisor.adv_active);
  Alcotest.(check int) "no phantom drop counted" 0 st.Advisor.adv_dropped;
  (* and the executor degrades a stale planned path to a scan *)
  let q = Query.(from "Hot" |> where_eq "Grp" (Value.Int 7)) in
  Alcotest.(check int) "query still answers" 10
    (Temp_list.length (Executor.query db q))

let () =
  Alcotest.run "mmdb_planner"
    [
      ( "feedback",
        [
          Alcotest.test_case "catch-all never poisons estimates" `Quick
            test_overflow_estimate_poisoning;
        ] );
      ( "column_stats",
        [
          Alcotest.test_case "distinct within tolerance" `Quick
            test_stats_distinct_estimate;
          Alcotest.test_case "min/max track updates and deletes" `Quick
            test_stats_minmax_updates_deletes;
          Alcotest.test_case "snapshot consistency" `Quick
            test_stats_snapshot_consistency;
        ] );
      ( "cost_planner",
        [
          Alcotest.test_case "cost = rule result multisets" `Quick
            test_planner_equivalence;
          Alcotest.test_case "EXPLAIN names planner and candidates" `Quick
            test_explain_names_planner_and_candidates;
          Alcotest.test_case "picks index and build side by cost" `Quick
            test_cost_picks_index_and_build_side;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "creates and uses an index" `Quick
            test_advisor_creates_and_uses_index;
          Alcotest.test_case "range workload gets t_tree" `Quick
            test_advisor_range_gets_ordered_index;
          Alcotest.test_case "drops a stale index" `Quick
            test_advisor_drops_stale_index;
          Alcotest.test_case "refuses under a snapshot" `Quick
            test_advisor_snapshot_guard;
          Alcotest.test_case "survives a lost index" `Quick
            test_advisor_survives_lost_index;
        ] );
    ]
