(* Network server tests: wire-protocol roundtrips, framing robustness,
   executor-queue semantics, and live end-to-end checks over real TCP
   sockets (ephemeral ports, one in-process server per test). *)

open Mmdb_storage
open Mmdb_net

let value = Alcotest.testable Value.pp Value.equal

(* --- protocol roundtrips ------------------------------------------------ *)

let strip_len frame = String.sub frame 4 (String.length frame - 4)

let roundtrip_request req =
  match Protocol.decode_request (strip_len (Protocol.encode_request req)) with
  | Ok r -> r
  | Error m -> Alcotest.fail ("request did not decode: " ^ m)

let roundtrip_response resp =
  match
    Protocol.decode_response (strip_len (Protocol.encode_response resp))
  with
  | Ok r -> r
  | Error m -> Alcotest.fail ("response did not decode: " ^ m)

let test_proto_request_roundtrip () =
  let reqs =
    [
      Protocol.Query "SELECT * FROM T;";
      Protocol.Prepare "INSERT INTO T VALUES (?, ?);";
      Protocol.Exec_prepared
        {
          id = 42;
          params =
            [
              Value.Null;
              Value.Bool true;
              Value.Bool false;
              Value.Int 0;
              Value.Int max_int;
              Value.Int min_int;
              Value.Int (-1);
              Value.Float 3.25;
              Value.Float (-0.0);
              Value.Float infinity;
              Value.Str "plain";
              Value.Str "embedded\x00nul and \xffbytes";
              Value.Str "";
            ];
        };
      Protocol.Ping;
      Protocol.Cancel;
      Protocol.Quit;
      Protocol.Status;
      Protocol.Stats;
      Protocol.Metrics;
    ]
  in
  List.iter
    (fun req ->
      let got = roundtrip_request req in
      Alcotest.(check bool) "request survives the wire" true (got = req))
    reqs

let test_proto_response_roundtrip () =
  let resps =
    [
      Protocol.Results
        {
          columns = [ "A"; "B.C" ];
          rows =
            [
              [| Value.Str "x"; Value.Int 47 |];
              [| Value.Null; Value.Float 1.5 |];
              [||];
            ];
        };
      Protocol.Results { columns = []; rows = [] };
      Protocol.Message "ok";
      Protocol.Prepared { id = 7; n_params = 3 };
      Protocol.Error (Protocol.Parse, "bad syntax");
      Protocol.Error (Protocol.Conflict, "would block");
      Protocol.Error (Protocol.Quota, "result of 10 rows exceeds the quota");
      Protocol.Busy "full";
      Protocol.Overloaded { retry_after_ms = 12.5; msg = "queue at 9" };
      Protocol.Overloaded { retry_after_ms = 0.0; msg = "" };
      Protocol.Pong;
      Protocol.Bye;
      Protocol.Notice "hello";
      Protocol.Status_text "line1\nline2";
      Protocol.Stats_json "{\"requests\":{\"total\":3}}";
      Protocol.Metrics_text "# TYPE mmdb_up gauge\nmmdb_up 1\n";
      Protocol.Metrics_text "";
    ]
  in
  List.iter
    (fun resp ->
      let got = roundtrip_response resp in
      Alcotest.(check bool) "response survives the wire" true (got = resp))
    resps

let test_proto_rejects_garbage () =
  (match Protocol.decode_request "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty payload must not decode");
  (match Protocol.decode_request "\x7fgarbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag must not decode");
  (* truncated Exec_prepared payload: framing fine, body short *)
  (match Protocol.decode_request "E\x00\x00\x00\x01\x00\x05" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated payload must not decode");
  match Protocol.decode_response "\x01nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown response tag must not decode"

(* --- framing over a real socket pair ------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with _ -> ()) [ a; b ])
    (fun () -> f a b)

let test_frame_roundtrip_and_eof () =
  with_socketpair (fun a b ->
      Protocol.write_frame a (Protocol.encode_request (Protocol.Query "x"));
      (match Protocol.read_frame b with
      | Ok payload -> Alcotest.(check string) "payload" "Qx" payload
      | Error _ -> Alcotest.fail "frame did not arrive");
      Unix.close a;
      match Protocol.read_frame b with
      | Error `Eof -> ()
      | _ -> Alcotest.fail "close at a boundary must read as `Eof")

let test_frame_oversized () =
  with_socketpair (fun a b ->
      (* announce a 100 MiB frame without sending it *)
      let hdr = Bytes.create 4 in
      Bytes.set_uint16_be hdr 0 0x0640;
      Bytes.set_uint16_be hdr 2 0;
      ignore (Unix.write a hdr 0 4);
      match Protocol.read_frame ~max_frame:(1 lsl 20) b with
      | Error (`Oversized n) ->
          Alcotest.(check int) "announced size" 0x06400000 n
      | _ -> Alcotest.fail "oversized header must be rejected")

let test_frame_zero_and_midframe () =
  with_socketpair (fun a b ->
      ignore (Unix.write a (Bytes.make 4 '\x00') 0 4);
      (match Protocol.read_frame b with
      | Error (`Malformed _) -> ()
      | _ -> Alcotest.fail "zero-length frame must be malformed");
      (* announce 10 bytes, send 3, hang up *)
      ignore (Unix.write_substring a "\x00\x00\x00\x0aQab" 0 7);
      Unix.close a;
      match Protocol.read_frame b with
      | Error (`Malformed _) -> ()
      | _ -> Alcotest.fail "mid-frame eof must be malformed")

(* --- injected network faults at the framing layer ----------------------- *)

module Fault = Mmdb_txn.Fault

let test_net_fault_torn_write () =
  let fault = Fault.create ~seed:42 () in
  Fault.arm fault ~point:"net.write.torn" Fault.Corrupt;
  with_socketpair (fun a b ->
      (match
         Protocol.write_frame ~fault a (Protocol.encode_request Protocol.Ping)
       with
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      | () -> Alcotest.fail "a torn write must surface as a reset");
      Alcotest.(check (list string))
        "the point fired" [ "net.write.torn" ] (Fault.fired fault);
      (* the peer never assembles a full frame out of the torn prefix *)
      match Protocol.read_frame b with
      | Error (`Malformed _) | Error `Eof -> ()
      | Ok _ -> Alcotest.fail "a torn frame must not decode"
      | Error (`Oversized _) -> Alcotest.fail "torn prefix read as oversized")

let test_net_fault_write_reset () =
  let fault = Fault.create ~seed:43 () in
  Fault.arm fault ~point:"net.write.reset" Fault.Corrupt;
  with_socketpair (fun a b ->
      (match
         Protocol.write_frame ~fault a (Protocol.encode_request Protocol.Ping)
       with
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      | () -> Alcotest.fail "an injected reset must raise");
      (* not a single byte escaped before the drop *)
      match Protocol.read_frame b with
      | Error `Eof -> ()
      | _ -> Alcotest.fail "peer of a reset write must see clean EOF")

let test_net_fault_read_reset_and_stall () =
  let fault = Fault.create ~seed:44 () in
  Fault.arm fault ~point:"net.read.reset" Fault.Corrupt;
  with_socketpair (fun a b ->
      Protocol.write_frame a (Protocol.encode_request Protocol.Ping);
      (match Protocol.read_frame ~fault b with
      | Error (`Malformed _) -> ()
      | _ -> Alcotest.fail "an injected read reset must be malformed");
      ignore (Fault.fired fault));
  (* a read stall delays but does not damage the frame *)
  let fault = Fault.create ~seed:45 () in
  Fault.arm fault ~point:"net.read.stall" (Fault.Delay 0.05);
  with_socketpair (fun a b ->
      Protocol.write_frame a (Protocol.encode_request Protocol.Ping);
      let t0 = Unix.gettimeofday () in
      (match Protocol.read_frame ~fault b with
      | Ok "p" -> ()
      | _ -> Alcotest.fail "stalled read must still deliver the frame");
      Alcotest.(check bool) "the stall actually delayed" true
        (Unix.gettimeofday () -. t0 >= 0.045))

let test_net_fault_slowloris_and_delay () =
  let fault = Fault.create ~seed:46 () in
  Fault.arm fault ~point:"net.write.slowloris" (Fault.Delay 0.002);
  with_socketpair (fun a b ->
      Protocol.write_frame ~fault a (Protocol.encode_request Protocol.Ping);
      (match Protocol.read_frame b with
      | Ok "p" -> ()
      | _ -> Alcotest.fail "a dribbled frame must still assemble"));
  let fault = Fault.create ~seed:47 () in
  Fault.arm fault ~point:"net.write.delay" (Fault.Delay 0.05);
  with_socketpair (fun a b ->
      let t0 = Unix.gettimeofday () in
      Protocol.write_frame ~fault a (Protocol.encode_request Protocol.Ping);
      Alcotest.(check bool) "the write was delayed" true
        (Unix.gettimeofday () -. t0 >= 0.045);
      match Protocol.read_frame b with
      | Ok "p" -> ()
      | _ -> Alcotest.fail "a delayed frame must still arrive intact")

let test_write_deadline () =
  (* nobody reads the peer: a multi-megabyte frame must hit the deadline
     instead of blocking forever once the kernel buffers fill *)
  with_socketpair (fun a _b ->
      let big =
        Protocol.encode_response
          (Protocol.Message (String.make (8 * 1024 * 1024) 'x'))
      in
      let t0 = Unix.gettimeofday () in
      match
        Protocol.write_frame ~deadline:(t0 +. 0.2) a big
      with
      | exception Protocol.Write_timeout ->
          Alcotest.(check bool) "timed out around the deadline" true
            (Unix.gettimeofday () -. t0 >= 0.15)
      | () -> Alcotest.fail "an unread 8 MiB frame must hit the deadline");
  (* with a draining peer the same deadline write completes *)
  with_socketpair (fun a b ->
      let frame = Protocol.encode_request (Protocol.Query "SELECT 1;") in
      Protocol.write_frame ~deadline:(Unix.gettimeofday () +. 5.0) a frame;
      match Protocol.read_frame b with
      | Ok p -> Alcotest.(check string) "payload intact" "QSELECT 1;" p
      | Error _ -> Alcotest.fail "deadline write with a reader must land")

(* --- executor queue ----------------------------------------------------- *)

let test_exec_queue_basics () =
  let q = Exec_queue.create () in
  let p1 = Exec_queue.submit q (fun () -> 6 * 7) in
  (match Exec_queue.wait p1 with
  | Ok v -> Alcotest.(check int) "job result" 42 v
  | Error _ -> Alcotest.fail "job raised");
  let p2 = Exec_queue.submit q (fun () -> failwith "boom") in
  (match Exec_queue.wait p2 with
  | Error (Failure m) -> Alcotest.(check string) "exn carried" "boom" m
  | _ -> Alcotest.fail "expected the job's exception");
  (* serial order: a slow job delays the next one, never overlaps it *)
  let order = ref [] in
  let pa = Exec_queue.submit q (fun () -> order := 1 :: !order) in
  let pb = Exec_queue.submit q (fun () -> order := 2 :: !order) in
  ignore (Exec_queue.wait pa);
  ignore (Exec_queue.wait pb);
  Alcotest.(check (list int)) "submission order" [ 2; 1 ] !order;
  Exec_queue.stop q;
  match Exec_queue.wait (Exec_queue.submit q (fun () -> 0)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit after stop must fail"

let test_exec_queue_timeout_and_abandon () =
  let q = Exec_queue.create () in
  let wake_r, wake_w = Unix.pipe () in
  let release = Atomic.make false in
  let slow =
    Exec_queue.submit q ~notify:wake_w (fun () ->
        while not (Atomic.get release) do
          Thread.delay 0.005
        done;
        "slow done")
  in
  (* a job queued behind the slow one; abandoned before it can start *)
  let queued = Exec_queue.submit q ~notify:wake_w (fun () -> "never runs") in
  (match
     Exec_queue.await slow ~wakeup:wake_r
       ~deadline:(Unix.gettimeofday () +. 0.05)
   with
  | `Timeout -> ()
  | `Done _ -> Alcotest.fail "slow job cannot be done yet");
  Exec_queue.abandon slow;
  Exec_queue.abandon queued;
  Atomic.set release true;
  (* both resolve: the slow one with its (discarded) value, the queued
     one as skipped — waiters never hang on abandoned work *)
  (match Exec_queue.wait queued with
  | Error (Failure _) -> ()
  | _ -> Alcotest.fail "skipped job must resolve with an error");
  let after =
    Exec_queue.await
      (Exec_queue.submit q ~notify:wake_w (fun () -> "alive"))
      ~wakeup:wake_r
      ~deadline:(Unix.gettimeofday () +. 2.0)
  in
  (match after with
  | `Done (Ok "alive") -> ()
  | _ -> Alcotest.fail "queue must keep serving after abandons");
  Exec_queue.stop q;
  List.iter Unix.close [ wake_r; wake_w ]

(* --- end-to-end over TCP ------------------------------------------------ *)

let test_config =
  {
    Server.default_config with
    Server.port = 0;
    (* ephemeral *)
    request_timeout = 10.0;
    idle_timeout = 0.0;
    (* no reaping unless a test asks for it *)
  }

let with_server ?(config = test_config) f =
  let db = Mmdb_core.Db.create () in
  let srv = Server.start ~config db in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) (fun () -> f srv)

let connect srv =
  match
    Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) ()
  with
  | Ok c -> c
  | Error m -> Alcotest.fail ("connect failed: " ^ m)

let expect_ok c sql =
  match Client.query c sql with
  | Ok (Protocol.Error (code, msg)) ->
      Alcotest.fail
        (Printf.sprintf "%S failed (%s): %s" sql
           (Protocol.err_code_name code) msg)
  | Ok resp -> resp
  | Error m -> Alcotest.fail (Printf.sprintf "%S transport error: %s" sql m)

let rows_of = function
  | Protocol.Results { rows; _ } -> rows
  | r ->
      Alcotest.fail
        (Fmt.str "expected a result set, got %a" Protocol.pp_response r)

(* Sort rows for order-insensitive comparison. *)
let sorted rows = List.sort compare rows

let test_e2e_basic () =
  with_server (fun srv ->
      let c = connect srv in
      ignore (expect_ok c "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      ignore (expect_ok c "INSERT INTO KV VALUES (1, 10);");
      ignore (expect_ok c "INSERT INTO KV VALUES (2, 20);");
      let rows = rows_of (expect_ok c "SELECT K, V FROM KV;") in
      Alcotest.(check int) "two rows" 2 (List.length rows);
      Alcotest.(check bool) "row content" true
        (sorted rows
        = [ [| Value.Int 1; Value.Int 10 |]; [| Value.Int 2; Value.Int 20 |] ]);
      (* prepared statements *)
      let id, n =
        match Client.prepare c "SELECT V FROM KV WHERE K = ?;" with
        | Ok x -> x
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check int) "one placeholder" 1 n;
      (match Client.exec_prepared c id [ Value.Int 2 ] with
      | Ok (Protocol.Results { rows = [ [| v |] ]; _ }) ->
          Alcotest.check value "prepared lookup" (Value.Int 20) v
      | Ok r ->
          Alcotest.fail (Fmt.str "unexpected: %a" Protocol.pp_response r)
      | Error m -> Alcotest.fail m);
      (* wrong arity is an error, session survives *)
      (match Client.exec_prepared c id [] with
      | Ok (Protocol.Error (Protocol.Exec, _)) -> ()
      | _ -> Alcotest.fail "missing params must be an exec error");
      (match Client.ping c with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (match Client.status c with
      | Ok s ->
          Alcotest.(check bool) "status mentions requests" true
            (String.length s > 0)
      | Error m -> Alcotest.fail m);
      (* parse errors are typed *)
      (match Client.query c "SELEKT nope;" with
      | Ok (Protocol.Error (Protocol.Parse, _)) -> ()
      | _ -> Alcotest.fail "parse errors must carry the Parse code");
      match Client.quit c with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

(* Retry a transactional batch until it commits: concurrency errors
   (would block / deadlock victim) roll back and retry. *)
let rec txn_retry c stmts tries =
  if tries = 0 then Alcotest.fail "transaction never committed"
  else
    let ok = ref true in
    List.iter
      (fun sql ->
        if !ok then
          match Client.query c sql with
          | Ok (Protocol.Error _) -> ok := false
          | Ok _ -> ()
          | Error m -> Alcotest.fail ("transport died mid-txn: " ^ m))
      stmts;
    if not !ok then begin
      (match Client.query c "ROLLBACK;" with _ -> ());
      Thread.delay 0.002;
      txn_retry c stmts (tries - 1)
    end

let test_e2e_concurrent_clients () =
  with_server (fun srv ->
      let setup = connect srv in
      ignore (expect_ok setup "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      let n_clients = 8 and per_client = 6 in
      let worker c_idx () =
        let c = connect srv in
        for i = 0 to per_client - 1 do
          let k = (c_idx * 1000) + i in
          let v = k + 7 in
          (* two transactions: the interpreter's deferred-update txns
             resolve UPDATE targets against committed state, so the
             INSERT must commit before the UPDATE can see it *)
          txn_retry c
            [
              "BEGIN;";
              Printf.sprintf "INSERT INTO KV VALUES (%d, 0);" k;
              "COMMIT;";
            ]
            200;
          txn_retry c
            [
              "BEGIN;";
              Printf.sprintf "UPDATE KV SET V = %d WHERE K = %d;" v k;
              "COMMIT;";
            ]
            200
        done;
        ignore (Client.quit c)
      in
      let threads =
        List.init n_clients (fun i -> Thread.create (worker i) ())
      in
      List.iter Thread.join threads;
      (* serial reference: same statements, one local session *)
      let ref_db = Mmdb_core.Db.create () in
      let ref_sess = Mmdb_lang.Interp.session ref_db in
      let ref_exec sql =
        match Mmdb_lang.Interp.exec_string ref_sess sql with
        | Ok _ -> ()
        | Error m -> Alcotest.fail ("reference exec failed: " ^ m)
      in
      ref_exec "CREATE TABLE KV (K int PRIMARY KEY, V int);";
      for c_idx = 0 to n_clients - 1 do
        for i = 0 to per_client - 1 do
          let k = (c_idx * 1000) + i in
          ref_exec (Printf.sprintf "INSERT INTO KV VALUES (%d, 0);" k);
          ref_exec
            (Printf.sprintf "UPDATE KV SET V = %d WHERE K = %d;" (k + 7) k)
        done
      done;
      let reference =
        match Mmdb_lang.Interp.exec ref_sess
                (List.hd
                   (Result.get_ok (Mmdb_lang.Parser.parse "SELECT K, V FROM KV;")))
        with
        | Ok (Mmdb_lang.Interp.Rows tl) -> Temp_list.materialize tl
        | _ -> Alcotest.fail "reference select failed"
      in
      let server_rows = rows_of (expect_ok setup "SELECT K, V FROM KV;") in
      Alcotest.(check int)
        "row count matches serial reference"
        (n_clients * per_client)
        (List.length server_rows);
      Alcotest.(check bool)
        "committed state equals the serial reference" true
        (sorted server_rows = sorted reference);
      (* all transactions finished: no lock survives *)
      Alcotest.(check int) "no locks leak" 0
        (Mmdb_txn.Lock_manager.active_locks
           (Mmdb_txn.Txn.lock_manager (Server.manager srv)));
      ignore (Client.quit setup))

let wait_until ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let test_e2e_kill_mid_txn () =
  with_server (fun srv ->
      let setup = connect srv in
      ignore (expect_ok setup "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      ignore (expect_ok setup "INSERT INTO KV VALUES (1, 10);");
      let doomed = connect srv in
      ignore (expect_ok doomed "BEGIN;");
      ignore (expect_ok doomed "INSERT INTO KV VALUES (99, 0);");
      ignore (expect_ok doomed "UPDATE KV SET V = 11 WHERE K = 1;");
      let before = Server.active_sessions srv in
      (* hang up without COMMIT — simulates a killed client *)
      Client.close doomed;
      Alcotest.(check bool) "server notices the disconnect" true
        (wait_until (fun () -> Server.active_sessions srv < before));
      (* the open transaction was rolled back: no partial effects ... *)
      let rows = rows_of (expect_ok setup "SELECT K, V FROM KV;") in
      Alcotest.(check bool) "only the committed row remains" true
        (sorted rows = [ [| Value.Int 1; Value.Int 10 |] ]);
      (* ... and no lock is left behind: a fresh writer sails through *)
      Alcotest.(check int) "no locks leak" 0
        (Mmdb_txn.Lock_manager.active_locks
           (Mmdb_txn.Txn.lock_manager (Server.manager srv)));
      txn_retry setup
        [ "BEGIN;"; "UPDATE KV SET V = 12 WHERE K = 1;"; "COMMIT;" ]
        5;
      ignore (Client.quit setup))

let test_e2e_robustness () =
  with_server (fun srv ->
      (* a healthy session that must survive everything below *)
      let healthy = connect srv in
      ignore (expect_ok healthy "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      let g = connect srv in
      (match Client.request g (Protocol.Query "SELECT * FROM KV;") with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      (* speak raw bytes at the socket level via a second connection *)
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
      (* greeting *)
      (match Protocol.read_frame sock with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "no greeting");
      (* valid length, unknown tag: one Proto error, connection lives *)
      ignore (Unix.write_substring sock "\x00\x00\x00\x03\x7fxy" 0 7);
      (match Protocol.read_frame ~max_frame:Protocol.max_response_frame sock with
      | Ok payload -> (
          match Protocol.decode_response payload with
          | Ok (Protocol.Error (Protocol.Proto, _)) -> ()
          | _ -> Alcotest.fail "garbage tag must earn a Proto error")
      | Error _ -> Alcotest.fail "server must answer garbage, not die");
      (* same connection still usable *)
      ignore
        (Unix.write_substring sock
           (Protocol.encode_request Protocol.Ping)
           0
           (String.length (Protocol.encode_request Protocol.Ping)));
      (match Protocol.read_frame ~max_frame:Protocol.max_response_frame sock with
      | Ok payload -> (
          match Protocol.decode_response payload with
          | Ok Protocol.Pong -> ()
          | _ -> Alcotest.fail "ping after garbage must still pong")
      | Error _ -> Alcotest.fail "connection must survive a bad request");
      (* oversized announcement: Proto error, then the server hangs up *)
      let huge = Bytes.create 4 in
      Bytes.set_int32_be huge 0 0x7f000000l;
      ignore (Unix.write sock huge 0 4);
      (match Protocol.read_frame ~max_frame:Protocol.max_response_frame sock with
      | Ok payload -> (
          match Protocol.decode_response payload with
          | Ok (Protocol.Error (Protocol.Proto, _)) -> ()
          | _ -> Alcotest.fail "oversized frame must earn a Proto error")
      | Error _ -> Alcotest.fail "oversized frame must be answered");
      (match Protocol.read_frame sock with
      | Error `Eof -> ()
      | _ -> Alcotest.fail "server must drop the connection after oversize");
      Unix.close sock;
      (* mid-frame disconnect: announce 10 bytes, send 2, vanish *)
      let sock2 = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect sock2
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
      (match Protocol.read_frame sock2 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "no greeting");
      ignore (Unix.write_substring sock2 "\x00\x00\x00\x0aQx" 0 6);
      Unix.close sock2;
      (* the victims disconnect; the healthy session never noticed *)
      Alcotest.(check bool) "victims reaped" true
        (wait_until (fun () -> Server.active_sessions srv <= 2));
      ignore (expect_ok healthy "INSERT INTO KV VALUES (5, 50);");
      let rows = rows_of (expect_ok healthy "SELECT K FROM KV;") in
      Alcotest.(check int) "healthy session unaffected" 1 (List.length rows);
      ignore (Client.quit g);
      ignore (Client.quit healthy))

let test_e2e_admission_busy () =
  with_server
    ~config:{ test_config with Server.max_connections = 1 }
    (fun srv ->
      let first = connect srv in
      (match
         Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) ()
       with
      | Error m ->
          Alcotest.(check bool) "refusal is a typed Busy" true
            (String.length m > 0
            && String.sub m 0 (min 11 (String.length m)) = "server busy")
      | Ok c ->
          Client.close c;
          Alcotest.fail "second connection must be refused");
      ignore (Client.quit first);
      (* the slot frees up once the first session is gone *)
      Alcotest.(check bool) "slot reusable after quit" true
        (wait_until (fun () ->
             match
               Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) ()
             with
             | Ok c ->
                 ignore (Client.quit c);
                 true
             | Error _ -> false)))

let test_e2e_idle_reap () =
  with_server
    ~config:{ test_config with Server.idle_timeout = 0.15 }
    (fun srv ->
      let c = connect srv in
      (match Client.ping c with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      Alcotest.(check bool) "idle session reaped" true
        (wait_until (fun () -> Server.active_sessions srv = 0));
      let s = Metrics.snapshot (Server.metrics srv) in
      Alcotest.(check int) "reap counted" 1 s.Metrics.s_reaped;
      Client.close c)

(* --- read-path classification: EXPLAIN and prepared SELECTs ------------- *)

(* EXPLAIN / EXPLAIN ANALYZE of a read-only statement and EXEC_PREPARED
   of a read-only prepared statement must dispatch on the parallel-reader
   path (s_ro_jobs), not barrier behind the writer. *)
let test_e2e_read_path_classification () =
  with_server (fun srv ->
      let c = connect srv in
      ignore (expect_ok c "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      ignore (expect_ok c "INSERT INTO KV VALUES (1, 10);");
      let ro_before = (Metrics.snapshot (Server.metrics srv)).Metrics.s_ro_jobs in
      ignore (expect_ok c "EXPLAIN SELECT V FROM KV WHERE K = 1;");
      ignore (expect_ok c "EXPLAIN ANALYZE SELECT V FROM KV WHERE K = 1;");
      let id, _ =
        match Client.prepare c "SELECT V FROM KV WHERE K = ?;" with
        | Ok x -> x
        | Error m -> Alcotest.fail m
      in
      (match Client.exec_prepared c id [ Value.Int 1 ] with
      | Ok (Protocol.Results _) -> ()
      | Ok r -> Alcotest.fail (Fmt.str "unexpected: %a" Protocol.pp_response r)
      | Error m -> Alcotest.fail m);
      let ro_after = (Metrics.snapshot (Server.metrics srv)).Metrics.s_ro_jobs in
      Alcotest.(check int) "EXPLAIN, EXPLAIN ANALYZE, EXEC_PREPARED all Read"
        (ro_before + 3) ro_after;
      (* a mutating prepared statement must not take the Read path *)
      let wid, _ =
        match Client.prepare c "UPDATE KV SET V = ? WHERE K = ?;" with
        | Ok x -> x
        | Error m -> Alcotest.fail m
      in
      (match Client.exec_prepared c wid [ Value.Int 11; Value.Int 1 ] with
      | Ok (Protocol.Results _ | Protocol.Message _) -> ()
      | Ok r -> Alcotest.fail (Fmt.str "unexpected: %a" Protocol.pp_response r)
      | Error m -> Alcotest.fail m);
      let ro_final = (Metrics.snapshot (Server.metrics srv)).Metrics.s_ro_jobs in
      Alcotest.(check int) "prepared UPDATE stays off the Read path"
        ro_after ro_final)

(* --- observability: EXPLAIN ANALYZE on the wire, STATS, slow log --------- *)

let test_e2e_observability () =
  let module J = Mmdb_util.Json in
  let get path j =
    List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some j) path
  in
  let slow_path = Filename.temp_file "mmdb_slow" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove slow_path with _ -> ())
  @@ fun () ->
  let config =
    {
      test_config with
      Server.slow_log = Some slow_path;
      (* an artificially low threshold makes every query "slow" *)
      slow_threshold = 0.0;
    }
  in
  with_server ~config (fun srv ->
      let c = connect srv in
      ignore (expect_ok c "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      for i = 1 to 20 do
        ignore
          (expect_ok c (Printf.sprintf "INSERT INTO KV VALUES (%d, %d);" i
                          (i * 10)))
      done;
      ignore (expect_ok c "SELECT K, V FROM KV WHERE V > 50;");
      (* EXPLAIN ANALYZE arrives as an ordinary result set over the wire *)
      (match expect_ok c "EXPLAIN ANALYZE SELECT K, V FROM KV WHERE V > 50;" with
      | Protocol.Results { columns; rows } ->
          Alcotest.(check (list string))
            "analyze columns"
            [
              "operator"; "time_ms"; "est_rows"; "actual_rows"; "err";
              "comparisons"; "data_moves"; "hash_calls"; "ptr_derefs";
              "detail";
            ]
            columns;
          Alcotest.(check bool) "several operator rows" true
            (List.length rows >= 3);
          (match List.rev rows with
          | last :: _ ->
              Alcotest.(check bool) "last row is the total" true
                (last.(0) = Value.Str "total")
          | [] -> Alcotest.fail "empty analyze table")
      | r ->
          Alcotest.fail
            (Fmt.str "EXPLAIN ANALYZE answered %a" Protocol.pp_response r));
      (* STATS: valid JSON carrying metrics and per-operator aggregates *)
      (match Client.stats c with
      | Error m -> Alcotest.fail ("STATS failed: " ^ m)
      | Ok payload -> (
          match J.parse payload with
          | Error e -> Alcotest.failf "STATS payload is not JSON: %s" e
          | Ok j ->
              (match Option.bind (get [ "requests"; "total" ] j) J.to_int_opt with
              | Some n -> Alcotest.(check bool) "requests counted" true (n >= 22)
              | None -> Alcotest.fail "no requests.total");
              (match Option.bind (get [ "requests"; "slow" ] j) J.to_int_opt with
              | Some n -> Alcotest.(check bool) "slow queries counted" true (n >= 1)
              | None -> Alcotest.fail "no requests.slow");
              (match
                 Option.bind (get [ "server"; "revision" ] j) J.to_string_opt
               with
              | Some rev -> Alcotest.(check bool) "revision" true (rev <> "")
              | None -> Alcotest.fail "no server.revision");
              (match
                 Option.bind (get [ "server"; "domains" ] j) J.to_int_opt
               with
              | Some d -> Alcotest.(check bool) "domain pool size" true (d >= 1)
              | None -> Alcotest.fail "no server.domains");
              (match get [ "by_kind"; "select" ] j with
              | Some (J.Obj _) -> ()
              | _ -> Alcotest.fail "no by_kind.select histogram");
              (match Option.bind (get [ "operators" ] j) J.to_list_opt with
              | Some ops ->
                  let names =
                    List.filter_map
                      (fun o ->
                        Option.bind (J.member "operator" o) J.to_string_opt)
                      ops
                  in
                  List.iter
                    (fun op ->
                      Alcotest.(check bool)
                        (op ^ " in operator aggregates")
                        true (List.mem op names))
                    [ "query"; "select" ]
              | None -> Alcotest.fail "no operators table")));
      match Client.quit c with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
  (* the server closed the sink on shutdown: every line must parse back,
     and the trace tree must be attached with the root "query" span *)
  let ic = open_in slow_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check bool) "slow log non-empty" true (List.length lines >= 20);
  List.iter
    (fun line ->
      match J.parse line with
      | Error e -> Alcotest.failf "unparsable slow-log line %S: %s" line e
      | Ok j ->
          (match Option.bind (J.member "sql" j) J.to_string_opt with
          | Some _ -> ()
          | None -> Alcotest.fail "slow-log line without sql");
          (match Option.bind (J.member "elapsed_ms" j) J.to_float_opt with
          | Some ms -> Alcotest.(check bool) "elapsed >= 0" true (ms >= 0.0)
          | None -> Alcotest.fail "slow-log line without elapsed_ms");
          match Option.bind (get [ "trace"; "name" ] j) J.to_string_opt with
          | Some name -> Alcotest.(check string) "trace root" "query" name
          | None -> Alcotest.fail "slow-log line without trace tree")
    lines

(* --- client retry layer: classification and backoff --------------------- *)

let test_retry_classification () =
  let r = Client.retriable in
  let chk name exp got = Alcotest.(check bool) name exp got in
  (* always retriable, idempotent or not *)
  chk "Busy" true (r ~idempotent:false (Ok (Protocol.Busy "full")));
  chk "Overloaded" true
    (r ~idempotent:false
       (Ok (Protocol.Overloaded { retry_after_ms = 1.0; msg = "" })));
  chk "Timeout" true
    (r ~idempotent:false (Ok (Protocol.Error (Protocol.Timeout, "t"))));
  (* retriable only for idempotent requests *)
  chk "Conflict gated off" false
    (r ~idempotent:false (Ok (Protocol.Error (Protocol.Conflict, "c"))));
  chk "Conflict gated on" true
    (r ~idempotent:true (Ok (Protocol.Error (Protocol.Conflict, "c"))));
  chk "transport loss gated off" false (r ~idempotent:false (Error "reset"));
  chk "transport loss gated on" true (r ~idempotent:true (Error "reset"));
  chk "Shutdown gated off" false
    (r ~idempotent:false (Ok (Protocol.Error (Protocol.Shutdown, "s"))));
  chk "Shutdown gated on" true
    (r ~idempotent:true (Ok (Protocol.Error (Protocol.Shutdown, "s"))));
  (* terminal regardless of idempotency *)
  chk "Parse" false (r ~idempotent:true (Ok (Protocol.Error (Protocol.Parse, "p"))));
  chk "Exec" false (r ~idempotent:true (Ok (Protocol.Error (Protocol.Exec, "e"))));
  chk "Proto" false (r ~idempotent:true (Ok (Protocol.Error (Protocol.Proto, "x"))));
  chk "Quota" false (r ~idempotent:true (Ok (Protocol.Error (Protocol.Quota, "q"))));
  chk "success" false (r ~idempotent:true (Ok (Protocol.Message "ok")));
  chk "results" false
    (r ~idempotent:true (Ok (Protocol.Results { columns = []; rows = [] })))

let test_backoff_determinism () =
  let schedule seed =
    let p = Client.retry_policy ~base_delay:0.01 ~max_delay:1.0 ~seed () in
    let prev = ref 0.01 in
    List.init 32 (fun _ ->
        let d = Client.next_delay p ~prev:!prev in
        prev := d;
        d)
  in
  let a = schedule 7 and b = schedule 7 and c = schedule 8 in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" a b;
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  List.iter
    (fun d ->
      Alcotest.(check bool) "delay within [base, cap]" true
        (d >= 0.01 && d <= 1.0))
    a;
  (* the cap really caps: growth from a huge prev saturates *)
  let p = Client.retry_policy ~base_delay:0.01 ~max_delay:0.25 ~seed:1 () in
  Alcotest.(check bool) "capped" true (Client.next_delay p ~prev:100.0 <= 0.25)

(* --- e2e: overload shedding, quotas, write deadline, chaos seams --------- *)

(* Deterministic overload: one read stalls on its reader domain (armed
   [exec.stall]), a write behind it turns the dispatcher into a barrier,
   and everything submitted after piles up in the queue — so a fresh
   read-only request must be shed with a typed [Overloaded] carrying a
   retry-after hint, and a retrying client must eventually get through. *)
let test_e2e_overload_shed () =
  let fault = Fault.create ~seed:7 () in
  (* lock-only mode: the stall/barrier/queue pile-up this test builds is
     exactly what MVCC's bypassed readers dissolve, so the deterministic
     shed scenario needs the barrier semantics *)
  let config =
    { test_config with Server.fault; shed_watermark = 1; mvcc = false }
  in
  with_server ~config (fun srv ->
      let setup = connect srv in
      ignore (expect_ok setup "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      ignore (expect_ok setup "INSERT INTO KV VALUES (1, 10);");
      let stalled = connect srv
      and writer = connect srv
      and queued_c = connect srv
      and shed_c = connect srv in
      (* warm every session (interpreter creation is an executor job)
         before arming, so the stall hits the statement we choose *)
      List.iter
        (fun c -> ignore (expect_ok c "SELECT K FROM KV;"))
        [ stalled; writer; queued_c; shed_c ];
      Fault.arm fault ~point:"exec.stall" (Fault.Delay 1.5);
      let t_stall =
        Thread.create
          (fun () -> ignore (expect_ok stalled "SELECT K FROM KV;"))
          ()
      in
      Thread.delay 0.25;
      let t_write =
        Thread.create
          (fun () ->
            ignore (expect_ok writer "INSERT INTO KV VALUES (2, 20);"))
          ()
      in
      Thread.delay 0.25;
      let t_queued =
        Thread.create
          (fun () -> ignore (rows_of (expect_ok queued_c "SELECT K FROM KV;")))
          ()
      in
      Thread.delay 0.25;
      (* queue depth is now >= 1: this read must be dropped unexecuted *)
      (match Client.query shed_c "SELECT K FROM KV;" with
      | Ok (Protocol.Overloaded { retry_after_ms; msg }) ->
          Alcotest.(check bool) "retry hint present" true
            (retry_after_ms >= 25.0);
          Alcotest.(check bool) "hint names the queue" true
            (String.length msg > 0)
      | Ok r ->
          Alcotest.fail
            (Fmt.str "expected Overloaded, got %a" Protocol.pp_response r)
      | Error m -> Alcotest.fail ("transport error: " ^ m));
      (* a retrying client backs off through the overload and succeeds *)
      let slept = ref 0 in
      let policy =
        Client.retry_policy ~max_attempts:30 ~base_delay:0.15 ~max_delay:0.3
          ~seed:7
          ~sleep:(fun d ->
            incr slept;
            Thread.delay d)
          ()
      in
      (match Client.query_retry shed_c ~policy "SELECT K FROM KV;" with
      | Ok (Protocol.Results { rows; _ }) ->
          Alcotest.(check bool) "retried through the overload" true
            (List.length rows >= 1)
      | Ok r ->
          Alcotest.fail
            (Fmt.str "retry ended with %a" Protocol.pp_response r)
      | Error m -> Alcotest.fail ("retry failed: " ^ m));
      Alcotest.(check bool) "the retry loop actually backed off" true
        (!slept >= 1);
      let rs = Client.retry_stats shed_c in
      Alcotest.(check bool) "retries counted" true (rs.Client.retries >= 1);
      Thread.join t_stall;
      Thread.join t_write;
      Thread.join t_queued;
      let snap = Metrics.snapshot (Server.metrics srv) in
      Alcotest.(check bool) "shed requests counted" true
        (snap.Metrics.s_shed >= 2);
      (* writes are never shed: the barrier write went through *)
      let rows = rows_of (expect_ok setup "SELECT K, V FROM KV;") in
      Alcotest.(check int) "write survived the overload" 2 (List.length rows);
      List.iter
        (fun c -> ignore (Client.quit c))
        [ stalled; writer; queued_c; shed_c; setup ])

let test_e2e_quota_result_rows () =
  with_server
    ~config:{ test_config with Server.max_result_rows = 5 }
    (fun srv ->
      let c = connect srv in
      ignore (expect_ok c "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      for i = 1 to 10 do
        ignore (expect_ok c (Printf.sprintf "INSERT INTO KV VALUES (%d, %d);" i i))
      done;
      (match Client.query c "SELECT K, V FROM KV;" with
      | Ok (Protocol.Error (Protocol.Quota, msg)) ->
          Alcotest.(check bool) "message names the quota" true
            (String.length msg > 0)
      | Ok r ->
          Alcotest.fail
            (Fmt.str "expected a Quota error, got %a" Protocol.pp_response r)
      | Error m -> Alcotest.fail ("transport error: " ^ m));
      (* the session survives, and under-quota queries still work *)
      let rows = rows_of (expect_ok c "SELECT K FROM KV WHERE K = 4;") in
      Alcotest.(check int) "under-quota query fine" 1 (List.length rows);
      let snap = Metrics.snapshot (Server.metrics srv) in
      Alcotest.(check bool) "quota kills counted" true
        (snap.Metrics.s_quota >= 1);
      ignore (Client.quit c))

let test_e2e_quota_tuple_budget () =
  with_server
    ~config:{ test_config with Server.tuple_budget = 4 }
    (fun srv ->
      let c = connect srv in
      ignore (expect_ok c "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      for i = 1 to 10 do
        ignore (expect_ok c (Printf.sprintf "INSERT INTO KV VALUES (%d, %d);" i i))
      done;
      (* the scan materializes >4 intermediate tuples: killed mid-flight *)
      (match Client.query c "SELECT K FROM KV WHERE V > 0;" with
      | Ok (Protocol.Error (Protocol.Quota, msg)) ->
          Alcotest.(check bool) "message mentions the budget" true
            (String.length msg > 0)
      | Ok r ->
          Alcotest.fail
            (Fmt.str "expected a Quota error, got %a" Protocol.pp_response r)
      | Error m -> Alcotest.fail ("transport error: " ^ m));
      (* a query under the budget still works on the same session *)
      let rows = rows_of (expect_ok c "SELECT K FROM KV WHERE K = 3;") in
      Alcotest.(check int) "small query fine" 1 (List.length rows);
      ignore (Client.quit c))

let test_e2e_write_deadline_cuts_slow_reader () =
  let config =
    { test_config with Server.write_timeout = 0.3; sndbuf = 4096 }
  in
  with_server ~config (fun srv ->
      let setup = connect srv in
      ignore (expect_ok setup "CREATE TABLE BIG (K int PRIMARY KEY, V string);");
      let payload = String.make 256 'x' in
      (* ~1500 rows * ~270 B comfortably overflows both socket buffers *)
      for batch = 0 to 29 do
        let b = Buffer.create 4096 in
        for i = 0 to 49 do
          Buffer.add_string b
            (Printf.sprintf "INSERT INTO BIG VALUES (%d, '%s');"
               ((batch * 50) + i) payload)
        done;
        ignore (expect_ok setup (Buffer.contents b))
      done;
      (* a raw client with a tiny receive window that never reads *)
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt_int sock Unix.SO_RCVBUF 4096;
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
      (match Protocol.read_frame sock with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "no greeting");
      let req = Protocol.encode_request (Protocol.Query "SELECT K, V FROM BIG;") in
      ignore (Unix.write_substring sock req 0 (String.length req));
      (* ... so the response write must hit the deadline and cut the
         session instead of pinning the handler forever *)
      Alcotest.(check bool) "write timeout fired" true
        (wait_until ~timeout:10.0 (fun () ->
             let snap = Metrics.snapshot (Server.metrics srv) in
             snap.Metrics.s_write_timeouts >= 1));
      Alcotest.(check bool) "victim session torn down" true
        (wait_until (fun () -> Server.active_sessions srv <= 1));
      (* the healthy session felt nothing *)
      let rows = rows_of (expect_ok setup "SELECT K FROM BIG WHERE K = 7;") in
      Alcotest.(check int) "healthy session fine" 1 (List.length rows);
      Unix.close sock;
      ignore (Client.quit setup))

let test_e2e_reaper_spares_inflight () =
  let fault = Fault.create ~seed:11 () in
  let config = { test_config with Server.idle_timeout = 0.15; fault } in
  with_server ~config (fun srv ->
      let c = connect srv in
      ignore (expect_ok c "CREATE TABLE KV (K int PRIMARY KEY, V int);");
      ignore (expect_ok c "INSERT INTO KV VALUES (1, 10);");
      (* in flight for several idle periods: the reaper must not cut it *)
      Fault.arm fault ~point:"exec.stall" (Fault.Delay 0.6);
      let rows = rows_of (expect_ok c "SELECT K FROM KV;") in
      Alcotest.(check int) "stalled query still answered" 1 (List.length rows);
      (match Client.ping c with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("session was reaped mid-request: " ^ m));
      (* once truly idle, the reaper takes it as usual *)
      Alcotest.(check bool) "idle session reaped afterwards" true
        (wait_until (fun () -> Server.active_sessions srv = 0));
      Client.close c)

let test_e2e_busy_connect_retry () =
  with_server
    ~config:{ test_config with Server.max_connections = 1 }
    (fun srv ->
      let first = connect srv in
      let slept = ref 0 in
      let policy =
        Client.retry_policy ~max_attempts:60 ~base_delay:0.05 ~max_delay:0.05
          ~seed:3
          ~sleep:(fun d ->
            incr slept;
            Thread.delay d)
          ()
      in
      let freer =
        Thread.create
          (fun () ->
            Thread.delay 0.3;
            ignore (Client.quit first))
          ()
      in
      (match
         Client.connect_retry ~policy ~host:"127.0.0.1"
           ~port:(Server.port srv) ()
       with
      | Ok c ->
          Alcotest.(check bool) "had to wait for the slot" true (!slept >= 1);
          (match Client.ping c with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
          ignore (Client.quit c)
      | Error m -> Alcotest.fail ("connect_retry never got in: " ^ m));
      Thread.join freer)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick
            test_proto_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_proto_response_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_proto_rejects_garbage;
        ] );
      ( "framing",
        [
          Alcotest.test_case "roundtrip and eof" `Quick
            test_frame_roundtrip_and_eof;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "zero length and mid-frame eof" `Quick
            test_frame_zero_and_midframe;
        ] );
      ( "net-faults",
        [
          Alcotest.test_case "torn write" `Quick test_net_fault_torn_write;
          Alcotest.test_case "write reset" `Quick test_net_fault_write_reset;
          Alcotest.test_case "read reset and stall" `Quick
            test_net_fault_read_reset_and_stall;
          Alcotest.test_case "slowloris and delayed write" `Quick
            test_net_fault_slowloris_and_delay;
          Alcotest.test_case "write deadline" `Quick test_write_deadline;
        ] );
      ( "retry",
        [
          Alcotest.test_case "classification" `Quick test_retry_classification;
          Alcotest.test_case "deterministic backoff" `Quick
            test_backoff_determinism;
        ] );
      ( "exec-queue",
        [
          Alcotest.test_case "serial execution" `Quick test_exec_queue_basics;
          Alcotest.test_case "timeout and abandon" `Quick
            test_exec_queue_timeout_and_abandon;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "basic session" `Quick test_e2e_basic;
          Alcotest.test_case "8 concurrent clients vs serial reference" `Quick
            test_e2e_concurrent_clients;
          Alcotest.test_case "killed client mid-transaction" `Quick
            test_e2e_kill_mid_txn;
          Alcotest.test_case "robustness against malformed input" `Quick
            test_e2e_robustness;
          Alcotest.test_case "admission control" `Quick
            test_e2e_admission_busy;
          Alcotest.test_case "idle reaping" `Quick test_e2e_idle_reap;
          Alcotest.test_case "read-path classification edges" `Quick
            test_e2e_read_path_classification;
          Alcotest.test_case "observability: analyze, stats, slow log" `Quick
            test_e2e_observability;
          Alcotest.test_case "overload shedding and retry-through" `Quick
            test_e2e_overload_shed;
          Alcotest.test_case "result-row quota" `Quick
            test_e2e_quota_result_rows;
          Alcotest.test_case "intermediate-tuple budget" `Quick
            test_e2e_quota_tuple_budget;
          Alcotest.test_case "write deadline cuts a stalled reader" `Quick
            test_e2e_write_deadline_cuts_slow_reader;
          Alcotest.test_case "reaper spares an in-flight request" `Quick
            test_e2e_reaper_spares_inflight;
          Alcotest.test_case "admission busy with connect_retry" `Quick
            test_e2e_busy_connect_retry;
        ] );
    ]
