(* Tests for the concurrency-control and recovery subsystem (§2.4):
   partition-level lock manager, stable log buffer, change-accumulation log
   device, crash recovery with working-set-first reload. *)

open Mmdb_storage
open Mmdb_txn

(* --- lock manager ------------------------------------------------------ *)

let res rel pid = { Lock_manager.rel; pid }

let test_lock_basics () =
  let lm = Lock_manager.create () in
  Alcotest.(check bool) "S grant" true
    (Lock_manager.acquire lm ~txn:1 (res "R" 0) Lock_manager.Shared
    = Lock_manager.Granted);
  Alcotest.(check bool) "S + S compatible" true
    (Lock_manager.acquire lm ~txn:2 (res "R" 0) Lock_manager.Shared
    = Lock_manager.Granted);
  Alcotest.(check bool) "X blocked by S" true
    (Lock_manager.acquire lm ~txn:3 (res "R" 0) Lock_manager.Exclusive
    = Lock_manager.Blocked);
  Alcotest.(check bool) "other partition free" true
    (Lock_manager.acquire lm ~txn:3 (res "R" 1) Lock_manager.Exclusive
    = Lock_manager.Granted);
  Lock_manager.release_all lm ~txn:1;
  Lock_manager.release_all lm ~txn:2;
  (* waiter 3 was promoted on release *)
  Alcotest.(check bool) "promoted after release" true
    (Lock_manager.holds lm ~txn:3 (res "R" 0) = Some Lock_manager.Exclusive)

let test_lock_reentrant_and_upgrade () =
  let lm = Lock_manager.create () in
  Alcotest.(check bool) "X grant" true
    (Lock_manager.acquire lm ~txn:1 (res "R" 0) Lock_manager.Exclusive
    = Lock_manager.Granted);
  Alcotest.(check bool) "re-acquire X" true
    (Lock_manager.acquire lm ~txn:1 (res "R" 0) Lock_manager.Exclusive
    = Lock_manager.Granted);
  Alcotest.(check bool) "S under own X" true
    (Lock_manager.acquire lm ~txn:1 (res "R" 0) Lock_manager.Shared
    = Lock_manager.Granted);
  Lock_manager.release_all lm ~txn:1;
  (* upgrade S -> X when sole holder *)
  ignore (Lock_manager.acquire lm ~txn:2 (res "R" 0) Lock_manager.Shared);
  Alcotest.(check bool) "upgrade as sole holder" true
    (Lock_manager.acquire lm ~txn:2 (res "R" 0) Lock_manager.Exclusive
    = Lock_manager.Granted)

let test_lock_deadlock () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 (res "R" 0) Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~txn:2 (res "R" 1) Lock_manager.Exclusive);
  Alcotest.(check bool) "t1 waits on p1" true
    (Lock_manager.acquire lm ~txn:1 (res "R" 1) Lock_manager.Exclusive
    = Lock_manager.Blocked);
  Alcotest.(check bool) "t2 requesting p0 closes the cycle" true
    (Lock_manager.acquire lm ~txn:2 (res "R" 0) Lock_manager.Exclusive
    = Lock_manager.Deadlock);
  (* victim aborts; t1 can proceed *)
  Lock_manager.release_all lm ~txn:2;
  Alcotest.(check bool) "t1 promoted" true
    (Lock_manager.holds lm ~txn:1 (res "R" 1) = Some Lock_manager.Exclusive)

(* Lock-manager safety property: under random acquire/release traffic, no
   resource ever has incompatible holders, no transaction both holds and
   waits for the same resource, and releasing everything leaves no locks. *)
let lock_manager_property =
  QCheck.Test.make ~count:80 ~name:"lock manager never grants incompatible holders"
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat ";"
            (List.map
               (function
                 | `S (t, r) -> Printf.sprintf "S%d.%d" t r
                 | `X (t, r) -> Printf.sprintf "X%d.%d" t r
                 | `R t -> Printf.sprintf "R%d" t)
               ops))
        Gen.(
          list_size (int_range 0 150)
            (frequency
               [
                 (4, map2 (fun t r -> `S (t, r)) (int_range 0 4) (int_range 0 3));
                 (4, map2 (fun t r -> `X (t, r)) (int_range 0 4) (int_range 0 3));
                 (2, map (fun t -> `R t) (int_range 0 4));
               ])))
    (fun ops ->
      let lm = Lock_manager.create () in
      let check_safety () =
        for r = 0 to 3 do
          let resource = res "R" r in
          let holders =
            List.filter_map
              (fun t ->
                Option.map (fun m -> (t, m)) (Lock_manager.holds lm ~txn:t resource))
              [ 0; 1; 2; 3; 4 ]
          in
          let exclusives =
            List.filter (fun (_, m) -> m = Lock_manager.Exclusive) holders
          in
          (match exclusives with
          | [] -> ()
          | [ (tx, _) ] ->
              List.iter
                (fun (t, _) ->
                  if t <> tx then
                    QCheck.Test.fail_reportf
                      "txn %d holds alongside exclusive holder %d on r%d" t tx r)
                holders
          | _ -> QCheck.Test.fail_reportf "two exclusive holders on r%d" r);
          (* holding and waiting on the same resource is only legal for a
             shared holder queued for an exclusive upgrade *)
          List.iter
            (fun (t, m) ->
              if
                List.mem resource (Lock_manager.waiting lm ~txn:t)
                && m <> Lock_manager.Shared
              then
                QCheck.Test.fail_reportf
                  "txn %d waits on r%d it already holds exclusively" t r)
            holders
        done
      in
      List.iter
        (fun op ->
          (match op with
          | `S (t, r) ->
              ignore (Lock_manager.acquire lm ~txn:t (res "R" r) Lock_manager.Shared)
          | `X (t, r) ->
              ignore
                (Lock_manager.acquire lm ~txn:t (res "R" r) Lock_manager.Exclusive)
          | `R t -> Lock_manager.release_all lm ~txn:t);
          check_safety ())
        ops;
      for t = 0 to 4 do
        Lock_manager.release_all lm ~txn:t
      done;
      if Lock_manager.active_locks lm <> 0 then
        QCheck.Test.fail_report "locks leaked after releasing every transaction";
      true)

(* --- manager fixture ----------------------------------------------------- *)

let dept_schema () =
  Schema.make ~name:"Department"
    [ Schema.col ~ty:Schema.T_string "Name"; Schema.col ~ty:Schema.T_int "Id" ]

let add_rel mgr r =
  match Txn.add_relation mgr r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let mk_mgr () =
  let mgr = Txn.create_manager () in
  let rel =
    Relation.create ~slot_capacity:8 ~schema:(dept_schema ())
      ~primary:
        {
          Relation.idx_name = "pk";
          columns = [| 1 |];
          unique = true;
          structure = Relation.T_tree;
        }
      ()
  in
  add_rel mgr rel;
  (mgr, rel)

let dept n i = [| Value.Str n; Value.Int i |]

let ok = function
  | Ok v -> v
  | Error f -> Alcotest.failf "unexpected failure: %a" Txn.pp_failure f

(* --- transactions --------------------------------------------------------- *)

let test_txn_commit_visible () =
  let mgr, rel = mk_mgr () in
  let t = Txn.begin_txn mgr in
  ok (Txn.insert t ~rel:"Department" (dept "Toy" 459));
  (* Deferred updates: nothing visible before commit. *)
  Alcotest.(check int) "invisible before commit" 0 (Relation.count rel);
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "visible after commit" 1 (Relation.count rel);
  Alcotest.(check bool) "log devce has the change" true
    (Log_device.pending_count (Txn.device mgr) = 1)

let test_txn_abort_invisible () =
  let mgr, rel = mk_mgr () in
  let t = Txn.begin_txn mgr in
  ok (Txn.insert t ~rel:"Department" (dept "Toy" 459));
  Txn.abort t;
  Alcotest.(check int) "aborted txn leaves nothing" 0 (Relation.count rel);
  Alcotest.(check int) "no committed log records" 0
    (Log_device.pending_count (Txn.device mgr));
  (match Txn.commit t with
  | Ok () -> Alcotest.fail "commit after abort succeeded"
  | Error _ -> ())

let test_txn_read_own_isolation () =
  let mgr, _rel = mk_mgr () in
  let t1 = Txn.begin_txn mgr in
  ok (Txn.insert t1 ~rel:"Department" (dept "Toy" 459));
  (match Txn.commit t1 with Ok () -> () | Error e -> Alcotest.fail e);
  let t2 = Txn.begin_txn mgr in
  let found = ok (Txn.read t2 ~rel:"Department" [| Value.Int 459 |]) in
  Alcotest.(check int) "committed data readable" 1 (List.length found);
  (* reader holds a shared partition lock now *)
  let t3 = Txn.begin_txn mgr in
  let tuple = List.hd found in
  (match Txn.delete t3 ~rel:"Department" tuple with
  | Error Txn.Would_block -> ()
  | Ok () -> Alcotest.fail "X granted over S"
  | Error f -> Alcotest.failf "unexpected: %a" Txn.pp_failure f);
  Txn.abort t2;
  Txn.abort t3

let test_txn_update_and_delete () =
  let mgr, rel = mk_mgr () in
  let t1 = Txn.begin_txn mgr in
  ok (Txn.insert t1 ~rel:"Department" (dept "Toy" 459));
  ok (Txn.insert t1 ~rel:"Department" (dept "Shoe" 409));
  (match Txn.commit t1 with Ok () -> () | Error e -> Alcotest.fail e);
  let toy = Option.get (Relation.lookup_one rel [| Value.Int 459 |]) in
  let t2 = Txn.begin_txn mgr in
  ok (Txn.update t2 ~rel:"Department" toy ~col:0 (Value.Str "Toys"));
  ok (Txn.delete t2 ~rel:"Department"
        (Option.get (Relation.lookup_one rel [| Value.Int 409 |])));
  (match Txn.commit t2 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one left" 1 (Relation.count rel);
  Alcotest.(check bool) "update applied" true
    (Tuple.get toy 0 = Value.Str "Toys")

let test_txn_unique_violation_aborts () =
  let mgr, rel = mk_mgr () in
  let t1 = Txn.begin_txn mgr in
  ok (Txn.insert t1 ~rel:"Department" (dept "Toy" 459));
  (match Txn.commit t1 with Ok () -> () | Error e -> Alcotest.fail e);
  let t2 = Txn.begin_txn mgr in
  ok (Txn.insert t2 ~rel:"Department" (dept "Paint" 455));
  ok (Txn.insert t2 ~rel:"Department" (dept "Dup" 459));
  (match Txn.commit t2 with
  | Ok () -> Alcotest.fail "unique violation committed"
  | Error _ -> ());
  (* The whole transaction rolled back, including the valid first insert. *)
  Alcotest.(check int) "atomic rollback" 1 (Relation.count rel);
  Alcotest.(check bool) "paint absent" true
    (Relation.lookup_one rel [| Value.Int 455 |] = None)

let test_txn_read_range () =
  let mgr, _rel = mk_mgr () in
  let t = Txn.begin_txn mgr in
  for i = 1 to 10 do
    ok (Txn.insert t ~rel:"Department" (dept "D" i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  let t2 = Txn.begin_txn mgr in
  let found =
    ok
      (Txn.read_range t2 ~rel:"Department" ~lo:[| Value.Int 3 |]
         ~hi:[| Value.Int 6 |] ())
  in
  Alcotest.(check int) "four in range" 4 (List.length found);
  (* the range read shared-locked the partition; a writer blocks *)
  let t3 = Txn.begin_txn mgr in
  (match Txn.delete t3 ~rel:"Department" (List.hd found) with
  | Error Txn.Would_block -> ()
  | Ok () -> Alcotest.fail "X over S granted"
  | Error f -> Alcotest.failf "unexpected %a" Txn.pp_failure f);
  Txn.abort t2;
  Txn.abort t3

let test_txn_two_writers_different_relations () =
  (* growth locks are per-relation, so writers on different relations do
     not conflict *)
  let mgr = Txn.create_manager () in
  let mk name =
    let s =
      Schema.make ~name
        [ Schema.col ~ty:Schema.T_string "Name"; Schema.col ~ty:Schema.T_int "Id" ]
    in
    let r =
      Relation.create ~schema:s
        ~primary:
          {
            Relation.idx_name = "pk";
            columns = [| 1 |];
            unique = true;
            structure = Relation.T_tree;
          }
        ()
    in
    add_rel mgr r;
    r
  in
  let _a = mk "A" and _b = mk "B" in
  let t1 = Txn.begin_txn mgr and t2 = Txn.begin_txn mgr in
  ok (Txn.insert t1 ~rel:"A" (dept "x" 1));
  ok (Txn.insert t2 ~rel:"B" (dept "y" 1));
  (match Txn.commit t1 with Ok () -> () | Error e -> Alcotest.fail e);
  (match Txn.commit t2 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "both applied" 1
    (Relation.count (Option.get (Txn.relation mgr "A")))

let test_txn_insert_conflict_growth_lock () =
  let mgr, _rel = mk_mgr () in
  let t1 = Txn.begin_txn mgr and t2 = Txn.begin_txn mgr in
  ok (Txn.insert t1 ~rel:"Department" (dept "a" 1));
  (match Txn.insert t2 ~rel:"Department" (dept "b" 2) with
  | Error Txn.Would_block -> ()
  | Ok () -> Alcotest.fail "concurrent growth permitted"
  | Error f -> Alcotest.failf "unexpected %a" Txn.pp_failure f);
  (match Txn.commit t1 with Ok () -> () | Error e -> Alcotest.fail e);
  (* after t1 released, t2 retries and proceeds *)
  ok (Txn.insert t2 ~rel:"Department" (dept "b" 2));
  (match Txn.commit t2 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "both inserted" 2
    (Relation.count (Option.get (Txn.relation mgr "Department")))

(* --- log device / disk store ---------------------------------------------- *)

let test_log_device_propagation () =
  let mgr, _rel = mk_mgr () in
  let t = Txn.begin_txn mgr in
  for i = 1 to 5 do
    ok (Txn.insert t ~rel:"Department" (dept "D" i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  let dev = Txn.device mgr and store = Txn.store mgr in
  Alcotest.(check int) "five accumulated" 5 (Log_device.pending_count dev);
  Alcotest.(check int) "disk copy still empty" 0
    (Disk_store.tuple_count store ~rel:"Department");
  Alcotest.(check int) "partial propagate" 2
    (Log_device.propagate ~limit:2 dev);
  Alcotest.(check int) "two on disk" 2
    (Disk_store.tuple_count store ~rel:"Department");
  Alcotest.(check int) "rest propagate" 3 (Log_device.propagate dev);
  Alcotest.(check int) "all on disk" 5
    (Disk_store.tuple_count store ~rel:"Department");
  Alcotest.(check int) "accumulation empty" 0 (Log_device.pending_count dev)

let test_checkpoint () =
  let mgr, rel = mk_mgr () in
  let t = Txn.begin_txn mgr in
  for i = 1 to 20 do
    ok (Txn.insert t ~rel:"Department" (dept "D" i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  Txn.checkpoint_all mgr;
  Alcotest.(check int) "checkpoint wrote all tuples" 20
    (Disk_store.tuple_count (Txn.store mgr) ~rel:"Department");
  Alcotest.(check int) "log drained" 0
    (Log_device.pending_count (Txn.device mgr));
  (* dirty flags cleared *)
  Alcotest.(check bool) "partitions clean" true
    (List.for_all
       (fun p -> not (Partition.is_dirty p))
       (Relation.partitions rel))

(* --- scheduler ----------------------------------------------------------- *)

let test_scheduler_serial_equivalent () =
  (* Non-conflicting scripts all commit, with no restarts. *)
  let mgr, rel = mk_mgr () in
  let scripts =
    List.init 4 (fun k ->
        List.init 5 (fun i ->
            Scheduler.Op_insert
              { rel = "Department"; values = dept "d" ((k * 10) + i) }))
  in
  (match Scheduler.run mgr scripts with
  | Ok stats ->
      Alcotest.(check int) "all committed" 4 stats.Scheduler.committed;
      Alcotest.(check int) "no deadlocks" 0 stats.Scheduler.deadlock_restarts;
      Alcotest.(check int) "all ops ran" 20 stats.Scheduler.ops_executed
  | Error _ -> Alcotest.fail "stalled");
  Alcotest.(check int) "twenty tuples" 20 (Relation.count rel);
  Alcotest.(check bool) "no locks leak" true
    (Lock_manager.active_locks (Txn.lock_manager mgr) = 0)

let test_scheduler_conflicting_writers () =
  (* All scripts insert into the same relation: the growth lock serializes
     them, so they must block and retry — but all eventually commit. *)
  let mgr, rel = mk_mgr () in
  let scripts =
    List.init 6 (fun k ->
        [
          Scheduler.Op_insert { rel = "Department"; values = dept "x" (k * 2) };
          Scheduler.Op_insert
            { rel = "Department"; values = dept "y" ((k * 2) + 1) };
        ])
  in
  (match Scheduler.run mgr scripts with
  | Ok stats ->
      Alcotest.(check int) "all committed" 6 stats.Scheduler.committed;
      Alcotest.(check bool) "writers actually blocked" true
        (stats.Scheduler.blocked_retries > 0)
  | Error _ -> Alcotest.fail "stalled");
  Alcotest.(check int) "all rows present" 12 (Relation.count rel)

let test_scheduler_deadlock_restart () =
  (* Two transactions read opposite tuples then update the other's: a
     classic crossing pattern that deadlocks; the scheduler restarts the
     victim and both commit. *)
  let mgr, rel = mk_mgr () in
  (* two tuples in two different partitions (slot_capacity 8, so force a
     second partition with filler) *)
  let t = Txn.begin_txn mgr in
  for i = 1 to 12 do
    ok (Txn.insert t ~rel:"Department" (dept "d" i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "two partitions" true
    (List.length (Relation.partitions rel) >= 2);
  let s1 =
    [
      Scheduler.Op_read { rel = "Department"; key = [| Value.Int 1 |] };
      Scheduler.Op_update
        { rel = "Department"; key = [| Value.Int 12 |]; col = 0; value = Value.Str "a" };
    ]
  in
  let s2 =
    [
      Scheduler.Op_read { rel = "Department"; key = [| Value.Int 12 |] };
      Scheduler.Op_update
        { rel = "Department"; key = [| Value.Int 1 |]; col = 0; value = Value.Str "b" };
    ]
  in
  match Scheduler.run mgr [ s1; s2 ] with
  | Ok stats ->
      Alcotest.(check int) "both committed" 2 stats.Scheduler.committed;
      Alcotest.(check bool) "a deadlock was broken" true
        (stats.Scheduler.deadlock_restarts > 0)
  | Error _ -> Alcotest.fail "stalled"

let test_scheduler_stall_budget () =
  (* The scheduler runs one op per live transaction per round, so a
     10-op script cannot finish inside a 3-round budget: [run] must give
     up and report the stall as [Error stats] instead of spinning. *)
  let mgr, _rel = mk_mgr () in
  let scripts =
    List.init 2 (fun k ->
        List.init 10 (fun i ->
            Scheduler.Op_insert
              { rel = "Department"; values = dept "s" ((k * 100) + i) }))
  in
  match Scheduler.run ~max_rounds:3 mgr scripts with
  | Ok _ -> Alcotest.fail "expected a stall with max_rounds:3"
  | Error stats ->
      Alcotest.(check int) "round budget honoured" 3 stats.Scheduler.rounds;
      Alcotest.(check int) "nothing committed" 0 stats.Scheduler.committed;
      Alcotest.(check bool) "partial progress recorded" true
        (stats.Scheduler.ops_executed > 0)

(* Money-conservation property: concurrent transfer transactions must
   preserve the total balance — torn (non-atomic) application or lost
   updates would break it. *)
let scheduler_conservation_property =
  QCheck.Test.make ~count:30 ~name:"concurrent transfers conserve total balance"
    QCheck.(pair (int_range 1 12) (int_range 0 100))
    (fun (n_txns, seed_extra) ->
      (* disjoint account pairs per transaction: absolute-value writes then
         conserve the total iff each transfer applies atomically *)
      let n_accounts = (2 * n_txns) + (seed_extra mod 5) in
      let mgr = Txn.create_manager () in
      let schema =
        Schema.make ~name:"Acct"
          [ Schema.col ~ty:Schema.T_int "Id"; Schema.col ~ty:Schema.T_int "Bal" ]
      in
      let rel =
        Relation.create ~slot_capacity:4 ~schema
          ~primary:
            {
              Relation.idx_name = "pk";
              columns = [| 0 |];
              unique = true;
              structure = Relation.T_tree;
            }
          ()
      in
      (match Txn.add_relation mgr rel with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      let t = Txn.begin_txn mgr in
      for i = 0 to n_accounts - 1 do
        match Txn.insert t ~rel:"Acct" [| Value.Int i; Value.Int 100 |] with
        | Ok () -> ()
        | Error _ -> QCheck.Test.fail_report "seed failed"
      done;
      (match Txn.commit t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      let rng = Mmdb_util.Rng.create ~seed:(n_txns + (100 * seed_extra)) () in
      (* Each transfer reads both balances, then writes balance+10 to one
         and balance-10 at the other via read-then-update ops.  Updates are
         expressed as absolute writes computed from the committed state, so
         conservation additionally requires that no transfer interleaves
         between another's read and write — i.e. two-phase locking is
         actually isolating them. *)
      let order = Array.init n_accounts Fun.id in
      Mmdb_util.Rng.shuffle rng order;
      let scripts =
        List.init n_txns (fun k ->
            let a = order.(2 * k) and b = order.((2 * k) + 1) in
            [
              (* a transfer as delete+insert pairs: 10 units from a to b.
                 Atomic commit means either both sides land or neither. *)
              Scheduler.Op_delete { rel = "Acct"; key = [| Value.Int a |] };
              Scheduler.Op_insert
                { rel = "Acct"; values = [| Value.Int a; Value.Int 90 |] };
              Scheduler.Op_delete { rel = "Acct"; key = [| Value.Int b |] };
              Scheduler.Op_insert
                { rel = "Acct"; values = [| Value.Int b; Value.Int 110 |] };
            ])
      in
      (match Scheduler.run mgr scripts with
      | Ok stats ->
          if stats.Scheduler.committed + stats.Scheduler.failed <> n_txns then
            QCheck.Test.fail_report "transactions lost"
      | Error _ -> QCheck.Test.fail_report "scheduler stalled");
      (* every account exists exactly once and the relation is intact *)
      (match Relation.validate rel with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "validate: %s" m);
      if Relation.count rel <> n_accounts then
        QCheck.Test.fail_reportf "account count %d <> %d" (Relation.count rel)
          n_accounts;
      (* conservation: each committed transfer moves 10 units between its
         own pair of accounts; a torn transfer (one side applied) breaks
         the 100·n total *)
      let total = ref 0 in
      Relation.iter rel (fun tu ->
          match Tuple.get tu 1 with Value.Int b -> total := !total + b | _ -> ());
      if !total <> 100 * n_accounts then
        QCheck.Test.fail_reportf "balance leaked: %d <> %d" !total
          (100 * n_accounts);
      true)

(* --- recovery --------------------------------------------------------------- *)

let populate_for_recovery () =
  let mgr, rel = mk_mgr () in
  (* 12 committed departments, checkpointed. *)
  let t = Txn.begin_txn mgr in
  for i = 1 to 12 do
    ok (Txn.insert t ~rel:"Department" (dept (Printf.sprintf "D%d" i) i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  Txn.checkpoint_all mgr;
  (* After the checkpoint: one more committed txn (un-propagated), one update,
     one delete, and one uncommitted txn that must be lost. *)
  let t2 = Txn.begin_txn mgr in
  ok (Txn.insert t2 ~rel:"Department" (dept "D13" 13));
  ok
    (Txn.update t2 ~rel:"Department"
       (Option.get (Relation.lookup_one rel [| Value.Int 1 |]))
       ~col:0 (Value.Str "Renamed"));
  ok
    (Txn.delete t2 ~rel:"Department"
       (Option.get (Relation.lookup_one rel [| Value.Int 2 |])));
  (match Txn.commit t2 with Ok () -> () | Error e -> Alcotest.fail e);
  let t3 = Txn.begin_txn mgr in
  ok (Txn.insert t3 ~rel:"Department" (dept "Lost" 99));
  (* crash now: t3 never commits; the log device never propagated t2 *)
  mgr

let test_recovery_round_trip () =
  let crashed = populate_for_recovery () in
  let state =
    Recovery.recover ~store:(Txn.store crashed) ~device:(Txn.device crashed)
      ~working_set:[ "Department" ]
  in
  Alcotest.(check int) "clean crash: no issues" 0
    (List.length (Recovery.issues state));
  let mgr = Recovery.manager state in
  let rel = Option.get (Txn.relation mgr "Department") in
  (* 12 checkpointed + 1 inserted - 1 deleted = 12; uncommitted insert lost *)
  Alcotest.(check int) "tuple count after recovery" 12 (Relation.count rel);
  Alcotest.(check bool) "uncommitted insert lost" true
    (Relation.lookup_one rel [| Value.Int 99 |] = None);
  Alcotest.(check bool) "committed insert recovered" true
    (Relation.lookup_one rel [| Value.Int 13 |] <> None);
  Alcotest.(check bool) "committed delete honoured" true
    (Relation.lookup_one rel [| Value.Int 2 |] = None);
  (match Relation.lookup_one rel [| Value.Int 1 |] with
  | Some t ->
      Alcotest.(check bool) "committed update merged on the fly" true
        (Tuple.get t 0 = Value.Str "Renamed")
  | None -> Alcotest.fail "tuple 1 missing");
  (* log records were merged, not lost *)
  let stats = Recovery.working_set_stats state in
  Alcotest.(check bool) "log records merged" true
    (stats.Recovery.log_records_merged >= 3);
  Alcotest.(check bool) "partitions read" true
    (stats.Recovery.partitions_read >= 1);
  Recovery.finish_background state;
  Alcotest.(check bool) "relation validates after recovery" true
    (Relation.validate rel = Ok ())

let test_recovery_working_set_first () =
  (* Two relations; only one in the working set.  The manager is usable for
     the working-set relation before background loading completes. *)
  let mgr = Txn.create_manager () in
  let mk name =
    let s =
      Schema.make ~name
        [ Schema.col ~ty:Schema.T_string "Name"; Schema.col ~ty:Schema.T_int "Id" ]
    in
    let r =
      Relation.create ~schema:s
        ~primary:
          {
            Relation.idx_name = "pk";
            columns = [| 1 |];
            unique = true;
            structure = Relation.T_tree;
          }
        ()
    in
    add_rel mgr r;
    r
  in
  let _hot = mk "Hot" and _cold = mk "Cold" in
  let t = Txn.begin_txn mgr in
  for i = 1 to 5 do
    ok (Txn.insert t ~rel:"Hot" (dept "h" i));
    ok (Txn.insert t ~rel:"Cold" (dept "c" i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  Txn.checkpoint_all mgr;
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[ "Hot" ]
  in
  let mgr' = Recovery.manager state in
  Alcotest.(check bool) "hot online immediately" true
    (Txn.relation mgr' "Hot" <> None);
  Alcotest.(check bool) "cold not yet loaded" true
    (Txn.relation mgr' "Cold" = None);
  (* normal processing against the working set works now *)
  let t' = Txn.begin_txn mgr' in
  let found = ok (Txn.read t' ~rel:"Hot" [| Value.Int 3 |]) in
  Alcotest.(check int) "read during background load" 1 (List.length found);
  Txn.abort t';
  Recovery.finish_background state;
  Alcotest.(check bool) "cold loaded by background" true
    (Txn.relation mgr' "Cold" <> None);
  Alcotest.(check int) "cold complete" 5
    (Relation.count (Option.get (Txn.relation mgr' "Cold")))

let test_recovery_preserves_secondary_indexes () =
  let mgr, rel = mk_mgr () in
  (match
     Relation.create_index rel ~idx_name:"by_name" ~columns:[| 0 |]
       ~structure:Relation.Mod_linear_hash
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* re-checkpoint so the catalog records the secondary index *)
  Txn.checkpoint_all mgr;
  let t = Txn.begin_txn mgr in
  for i = 1 to 6 do
    ok (Txn.insert t ~rel:"Department" (dept (Printf.sprintf "N%d" i) i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[ "Department" ]
  in
  Recovery.finish_background state;
  let rel' = Option.get (Txn.relation (Recovery.manager state) "Department") in
  Alcotest.(check int) "two indexes rebuilt" 2
    (List.length (Relation.index_defs rel'));
  (match Relation.lookup_one ~index:"by_name" rel' [| Value.Str "N3" |] with
  | Some t -> Alcotest.(check bool) "secondary works" true (Tuple.get t 1 = Value.Int 3)
  | None -> Alcotest.fail "secondary index lost");
  Alcotest.(check bool) "validates" true (Relation.validate rel' = Ok ())

let test_recovery_partial_propagation () =
  (* some changes propagated to disk, some still in the accumulation log *)
  let mgr, _rel = mk_mgr () in
  let t = Txn.begin_txn mgr in
  for i = 1 to 10 do
    ok (Txn.insert t ~rel:"Department" (dept "D" i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  ignore (Log_device.propagate ~limit:4 (Txn.device mgr));
  Alcotest.(check int) "six still pending" 6
    (Log_device.pending_count (Txn.device mgr));
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[ "Department" ]
  in
  let rel' = Option.get (Txn.relation (Recovery.manager state) "Department") in
  Alcotest.(check int) "all ten recovered" 10 (Relation.count rel')

let test_recovery_foreign_key_fixup () =
  (* Employee -> Department pointers must survive a crash. *)
  let mgr = Txn.create_manager () in
  let dept_rel =
    Relation.create ~schema:(dept_schema ())
      ~primary:
        {
          Relation.idx_name = "pk";
          columns = [| 1 |];
          unique = true;
          structure = Relation.T_tree;
        }
      ()
  in
  let emp_schema =
    Schema.make ~name:"Employee"
      [
        Schema.col ~ty:Schema.T_string "Name";
        Schema.col ~ty:Schema.T_int "Id";
        Schema.col ~ty:(Schema.T_ref "Department") "Dept";
      ]
  in
  let emp_rel =
    Relation.create ~schema:emp_schema
      ~primary:
        {
          Relation.idx_name = "pk";
          columns = [| 1 |];
          unique = true;
          structure = Relation.T_tree;
        }
      ()
  in
  add_rel mgr dept_rel;
  add_rel mgr emp_rel;
  let t = Txn.begin_txn mgr in
  ok (Txn.insert t ~rel:"Department" (dept "Toy" 459));
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  let toy = Option.get (Relation.lookup_one dept_rel [| Value.Int 459 |]) in
  let t2 = Txn.begin_txn mgr in
  ok
    (Txn.insert t2 ~rel:"Employee"
       [| Value.Str "Dave"; Value.Int 23; Value.Ref toy |]);
  (match Txn.commit t2 with Ok () -> () | Error e -> Alcotest.fail e);
  (* crash without checkpoint: everything lives in the accumulation log *)
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[]
  in
  Recovery.finish_background state;
  let mgr' = Recovery.manager state in
  let emp' = Option.get (Txn.relation mgr' "Employee") in
  let dave = Option.get (Relation.lookup_one emp' [| Value.Int 23 |]) in
  (match Tuple.get dave 2 with
  | Value.Ref d ->
      Alcotest.(check bool) "pointer re-targeted to rebuilt department" true
        (Tuple.get d 0 = Value.Str "Toy")
  | v ->
      Alcotest.failf "expected rebuilt pointer, got %s" (Value.to_string v));
  Alcotest.(check int) "fixups recorded" 1
    (Recovery.background_stats state).Recovery.pointer_fixups

let test_recovery_moved_partition () =
  (* A tuple checkpointed into partition p is later moved to another
     partition by a heap-overflowing string update; subsequent updates and
     deletes of the moved tuple carry the new pid in their log records but
     must still find the tuple in the checkpointed image (location map). *)
  let mgr = Txn.create_manager () in
  let rel =
    Relation.create ~slot_capacity:4 ~heap_capacity:64 ~schema:(dept_schema ())
      ~primary:
        {
          Relation.idx_name = "pk";
          columns = [| 1 |];
          unique = true;
          structure = Relation.T_tree;
        }
      ()
  in
  add_rel mgr rel;
  let t = Txn.begin_txn mgr in
  for i = 1 to 4 do
    ok (Txn.insert t ~rel:"Department" (dept (String.make 8 'a') i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  Txn.checkpoint_all mgr;
  let tup i = Option.get (Relation.lookup_one rel [| Value.Int i |]) in
  let pid_of tu = (Tuple.resolve tu).Value.pid in
  let p1_before = pid_of (tup 1) and p2_before = pid_of (tup 2) in
  (* big-string updates overflow the 64-byte partition heap: both move *)
  let t2 = Txn.begin_txn mgr in
  ok
    (Txn.update t2 ~rel:"Department" (tup 1) ~col:0
       (Value.Str (String.make 48 'x')));
  ok
    (Txn.update t2 ~rel:"Department" (tup 2) ~col:0
       (Value.Str (String.make 56 'y')));
  (match Txn.commit t2 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "tuple 1 moved partitions" true
    (pid_of (tup 1) <> p1_before);
  Alcotest.(check bool) "tuple 2 moved partitions" true
    (pid_of (tup 2) <> p2_before);
  (* update and delete the moved tuples, then propagate so the changes hit
     the disk images written before the move *)
  let t3 = Txn.begin_txn mgr in
  ok
    (Txn.update t3 ~rel:"Department" (tup 1) ~col:0
       (Value.Str (String.make 48 'z')));
  ok (Txn.delete t3 ~rel:"Department" (tup 2));
  (match Txn.commit t3 with Ok () -> () | Error e -> Alcotest.fail e);
  ignore (Log_device.propagate (Txn.device mgr));
  (* crash + recover *)
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[ "Department" ]
  in
  Recovery.finish_background state;
  Alcotest.(check int) "no issues" 0 (List.length (Recovery.issues state));
  let rel' = Option.get (Txn.relation (Recovery.manager state) "Department") in
  Alcotest.(check int) "three tuples survive" 3 (Relation.count rel');
  (match Relation.lookup_one rel' [| Value.Int 1 |] with
  | Some tu ->
      Alcotest.(check bool) "moved tuple carries final update" true
        (Tuple.get tu 0 = Value.Str (String.make 48 'z'))
  | None -> Alcotest.fail "moved tuple 1 lost");
  Alcotest.(check bool) "moved tuple 2 deleted" true
    (Relation.lookup_one rel' [| Value.Int 2 |] = None);
  Alcotest.(check bool) "validates" true (Relation.validate rel' = Ok ())

let test_recovery_dropped_relation_records () =
  (* Log records for a relation the disk catalog no longer knows must be
     reported as orphans, not replayed and not fatal. *)
  let mgr, _rel = mk_mgr () in
  let t = Txn.begin_txn mgr in
  ok (Txn.insert t ~rel:"Department" (dept "Toy" 459));
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  (* checkpoint truncates the retained log, so the forged records below
     (whose fresh buffer numbers LSNs from 1) are the only ones left *)
  Txn.checkpoint_all mgr;
  (* committed records for a relation absent from the catalog, as if the
     relation had been dropped after the records were logged *)
  let side = Log_buffer.create () in
  Log_buffer.append side ~txn:9 ~rel:"Ghost" ~pid:0
    (Log_record.Insert
       { Log_record.sid = 100_000; svalues = [| Log_record.S_int 1 |] });
  Log_buffer.append side ~txn:9 ~rel:"Ghost" ~pid:0
    (Log_record.Update
       { tid = 100_000; col = 0; svalue = Log_record.S_int 2 });
  ignore (Log_buffer.commit side ~txn:9);
  Log_device.absorb (Txn.device mgr) side;
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[ "Department" ]
  in
  Recovery.finish_background state;
  (match Recovery.issues state with
  | [ Recovery.Orphan_log_records { rel = "Ghost"; records = 2 } ] -> ()
  | is ->
      Alcotest.failf "expected one Ghost orphan issue, got: %a"
        (Fmt.list ~sep:Fmt.semi Recovery.pp_issue)
        is);
  let rel' = Option.get (Txn.relation (Recovery.manager state) "Department") in
  Alcotest.(check int) "department intact" 1 (Relation.count rel');
  Alcotest.(check bool) "ghost never materialized" true
    (Txn.relation (Recovery.manager state) "Ghost" = None)

let test_recovery_empty_working_set () =
  (* recovery with an empty working set must return an operational (if
     empty) manager; everything loads in the background phase *)
  let mgr, _rel = mk_mgr () in
  let t = Txn.begin_txn mgr in
  for i = 1 to 6 do
    ok (Txn.insert t ~rel:"Department" (dept "D" i))
  done;
  (match Txn.commit t with Ok () -> () | Error e -> Alcotest.fail e);
  let state =
    Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
      ~working_set:[]
  in
  Alcotest.(check int) "nothing loaded in phase 1" 0
    (List.length (Recovery.loaded_relations state));
  Alcotest.(check int) "phase-1 stats untouched" 0
    (Recovery.working_set_stats state).Recovery.tuples_restored;
  Recovery.finish_background state;
  Alcotest.(check int) "no issues" 0 (List.length (Recovery.issues state));
  let rel' = Option.get (Txn.relation (Recovery.manager state) "Department") in
  Alcotest.(check int) "all six loaded in background" 6 (Relation.count rel')

(* Recovery round-trip property: any committed history (inserts, deletes,
   updates, checkpoints, partial propagation) must be reconstructed exactly
   by crash recovery; uncommitted work must vanish. *)
let recovery_roundtrip_property =
  QCheck.Test.make ~count:40 ~name:"recovery reconstructs committed state"
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat ";"
            (List.map
               (function
                 | `Ins k -> Printf.sprintf "I%d" k
                 | `Del k -> Printf.sprintf "D%d" k
                 | `Upd k -> Printf.sprintf "U%d" k
                 | `Commit -> "C"
                 | `Abort -> "A"
                 | `Checkpoint -> "K"
                 | `Propagate -> "P")
               ops))
        Gen.(
          list_size (int_range 0 120)
            (frequency
               [
                 (6, map (fun k -> `Ins k) (int_range 0 40));
                 (3, map (fun k -> `Del k) (int_range 0 40));
                 (3, map (fun k -> `Upd k) (int_range 0 40));
                 (3, return `Commit);
                 (1, return `Abort);
                 (1, return `Checkpoint);
                 (1, return `Propagate);
               ])))
    (fun ops ->
      let mgr, rel = mk_mgr () in
      (* model of committed state: key -> name *)
      let committed : (int, string) Hashtbl.t = Hashtbl.create 32 in
      let pending = ref [] in
      let txn = ref (Txn.begin_txn mgr) in
      let declare_or_skip f = match f () with Ok () -> true | Error _ -> false in
      List.iter
        (fun op ->
          match op with
          | `Ins k ->
              let name = Printf.sprintf "n%d" k in
              if
                (not (Hashtbl.mem committed k))
                && not (List.exists (fun (op, k') -> op = `I && k' = k) !pending)
              then begin
                if declare_or_skip (fun () -> Txn.insert !txn ~rel:"Department" (dept name k))
                then pending := (`I, k) :: !pending
              end
          | `Del k -> (
              match Relation.lookup_one rel [| Value.Int k |] with
              | Some tu ->
                  if
                    not
                      (List.exists (fun (op, k') -> (op = `D || op = `U) && k' = k) !pending)
                  then begin
                    if declare_or_skip (fun () -> Txn.delete !txn ~rel:"Department" tu)
                    then pending := (`D, k) :: !pending
                  end
              | None -> ())
          | `Upd k -> (
              match Relation.lookup_one rel [| Value.Int k |] with
              | Some tu ->
                  if
                    not
                      (List.exists (fun (op, k') -> (op = `D || op = `U) && k' = k) !pending)
                  then begin
                    if
                      declare_or_skip (fun () ->
                          Txn.update !txn ~rel:"Department" tu ~col:0
                            (Value.Str (Printf.sprintf "u%d" k)))
                    then pending := (`U, k) :: !pending
                  end
              | None -> ())
          | `Commit ->
              (match Txn.commit !txn with
              | Ok () ->
                  List.iter
                    (fun (op, k) ->
                      match op with
                      | `I -> Hashtbl.replace committed k (Printf.sprintf "n%d" k)
                      | `D -> Hashtbl.remove committed k
                      | `U -> Hashtbl.replace committed k (Printf.sprintf "u%d" k))
                    (List.rev !pending)
              | Error _ -> ());
              pending := [];
              txn := Txn.begin_txn mgr
          | `Abort ->
              Txn.abort !txn;
              pending := [];
              txn := Txn.begin_txn mgr
          | `Checkpoint -> Txn.checkpoint_all mgr
          | `Propagate -> ignore (Log_device.propagate ~limit:3 (Txn.device mgr)))
        ops;
      (* crash with the live transaction possibly holding uncommitted work *)
      let state =
        Recovery.recover ~store:(Txn.store mgr) ~device:(Txn.device mgr)
          ~working_set:[ "Department" ]
      in
      Recovery.finish_background state;
      (match Recovery.issues state with
      | [] -> ()
      | is ->
          QCheck.Test.fail_reportf "clean crash produced issues: %a"
            (Fmt.list ~sep:Fmt.semi Recovery.pp_issue)
            is);
      let rel' =
        Option.get (Txn.relation (Recovery.manager state) "Department")
      in
      if Relation.count rel' <> Hashtbl.length committed then
        QCheck.Test.fail_reportf "count %d, model %d" (Relation.count rel')
          (Hashtbl.length committed);
      Hashtbl.iter
        (fun k name ->
          match Relation.lookup_one rel' [| Value.Int k |] with
          | Some tu ->
              if Tuple.get tu 0 <> Value.Str name then
                QCheck.Test.fail_reportf "key %d has wrong value" k
          | None -> QCheck.Test.fail_reportf "key %d lost" k)
        committed;
      (match Relation.validate rel' with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "validate: %s" m);
      true)

let () =
  Alcotest.run "mmdb_txn"
    [
      ( "locks",
        [
          Alcotest.test_case "grant/block/promote" `Quick test_lock_basics;
          Alcotest.test_case "reentrancy and upgrade" `Quick
            test_lock_reentrant_and_upgrade;
          Alcotest.test_case "deadlock detection" `Quick test_lock_deadlock;
          QCheck_alcotest.to_alcotest lock_manager_property;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit visibility" `Quick test_txn_commit_visible;
          Alcotest.test_case "abort leaves no trace" `Quick
            test_txn_abort_invisible;
          Alcotest.test_case "read isolation via S locks" `Quick
            test_txn_read_own_isolation;
          Alcotest.test_case "update and delete" `Quick
            test_txn_update_and_delete;
          Alcotest.test_case "unique violation aborts atomically" `Quick
            test_txn_unique_violation_aborts;
          Alcotest.test_case "range read locking" `Quick test_txn_read_range;
          Alcotest.test_case "independent relations don't conflict" `Quick
            test_txn_two_writers_different_relations;
          Alcotest.test_case "growth lock serializes inserts" `Quick
            test_txn_insert_conflict_growth_lock;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "non-conflicting scripts" `Quick
            test_scheduler_serial_equivalent;
          Alcotest.test_case "conflicting writers serialize" `Quick
            test_scheduler_conflicting_writers;
          Alcotest.test_case "deadlock victim restarts" `Quick
            test_scheduler_deadlock_restart;
          Alcotest.test_case "round budget exhaustion reports a stall" `Quick
            test_scheduler_stall_budget;
          QCheck_alcotest.to_alcotest scheduler_conservation_property;
        ] );
      ( "log",
        [
          Alcotest.test_case "device propagation" `Quick
            test_log_device_propagation;
          Alcotest.test_case "checkpoint" `Quick test_checkpoint;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "round trip with log merge" `Quick
            test_recovery_round_trip;
          Alcotest.test_case "working set first" `Quick
            test_recovery_working_set_first;
          Alcotest.test_case "foreign-key pointer fixup" `Quick
            test_recovery_foreign_key_fixup;
          Alcotest.test_case "secondary indexes survive recovery" `Quick
            test_recovery_preserves_secondary_indexes;
          Alcotest.test_case "partial propagation" `Quick
            test_recovery_partial_propagation;
          Alcotest.test_case "update/delete of moved tuple after checkpoint"
            `Quick test_recovery_moved_partition;
          Alcotest.test_case "log records of a dropped relation" `Quick
            test_recovery_dropped_relation_records;
          Alcotest.test_case "empty working set" `Quick
            test_recovery_empty_working_set;
          QCheck_alcotest.to_alcotest recovery_roundtrip_property;
        ] );
    ]
