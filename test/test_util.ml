(* Tests for the utility substrate: PRNG, statistics/sampling, the paper's
   quicksort, and the operation counters. *)

open Mmdb_util

(* --- Rng --------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 () and b = Rng.create ~seed:42 () in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create ~seed:43 () in
  let differs = ref false in
  let a' = Rng.create ~seed:42 () in
  for _ = 1 to 20 do
    if Rng.int a' 1_000_000 <> Rng.int c 1_000_000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of bounds: %d" x;
    let y = Rng.int_in_range rng ~lo:(-3) ~hi:3 in
    if y < -3 || y > 3 then Alcotest.failf "range out of bounds: %d" y;
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done;
  Alcotest.check_raises "int 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_copy_and_split () =
  let a = Rng.create ~seed:9 () in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.int a 1000)
    (Rng.int b 1000);
  let c = Rng.split a in
  (* split advances the parent and the child produces a distinct stream *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.int a 1000 = Rng.int c 1000 then incr same
  done;
  Alcotest.(check bool) "split stream is distinct" true (!same < 20)

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:5 () in
  let a = Array.init 200 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 200 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 200 Fun.id)

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:6 () in
  let s = Rng.sample_without_replacement rng ~k:50 ~n:100 in
  Alcotest.(check int) "k elements" 50 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 50 (List.length uniq);
  Array.iter (fun x -> if x < 0 || x >= 100 then Alcotest.fail "range") s;
  (* k = n is a full permutation *)
  let full = Rng.sample_without_replacement rng ~k:10 ~n:10 in
  Alcotest.(check int) "full draw distinct" 10
    (List.length (List.sort_uniq compare (Array.to_list full)));
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Rng.sample_without_replacement") (fun () ->
      ignore (Rng.sample_without_replacement rng ~k:11 ~n:10))

let test_gaussian_moments () =
  let rng = Rng.create ~seed:7 () in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  let m = Stats.mean xs and s = Stats.stddev xs in
  if Float.abs m > 0.05 then Alcotest.failf "mean %f too far from 0" m;
  if Float.abs (s -. 1.0) > 0.05 then Alcotest.failf "stddev %f too far from 1" s

(* --- Stats ------------------------------------------------------------- *)

let test_truncated_normal_bounds () =
  let rng = Rng.create ~seed:8 () in
  for _ = 1 to 2000 do
    let x = Stats.truncated_normal rng ~mean:0.0 ~stddev:0.3 in
    if x < 0.0 || x > 1.0 then Alcotest.failf "outside [0,1]: %f" x
  done;
  Alcotest.check_raises "bad stddev"
    (Invalid_argument "Stats.truncated_normal: stddev <= 0") (fun () ->
      ignore (Stats.truncated_normal rng ~mean:0.0 ~stddev:0.0))

let test_duplicate_weights () =
  let rng = Rng.create ~seed:9 () in
  let w = Stats.duplicate_weights rng ~stddev:0.1 ~n_values:100 in
  Alcotest.(check int) "n weights" 100 (Array.length w);
  let total = Array.fold_left ( +. ) 0.0 w in
  if Float.abs (total -. 1.0) > 1e-9 then Alcotest.fail "not normalized";
  (* sorted descending *)
  for i = 1 to 99 do
    if w.(i) > w.(i - 1) +. 1e-12 then Alcotest.fail "not descending"
  done;
  (* skew: σ=0.1 concentrates far more mass on top decile than σ=0.8 *)
  let top_decile stddev =
    let rng = Rng.create ~seed:10 () in
    let w = Stats.duplicate_weights rng ~stddev ~n_values:100 in
    Array.fold_left ( +. ) 0.0 (Array.sub w 0 10)
  in
  Alcotest.(check bool) "skew ordering" true (top_decile 0.1 > 2.0 *. top_decile 0.8)

let test_apportion () =
  let counts = Stats.apportion [| 0.5; 0.3; 0.2 |] ~total:100 ~min_each:1 in
  Alcotest.(check int) "sums to total" 100 (Array.fold_left ( + ) 0 counts);
  Array.iter (fun c -> if c < 1 then Alcotest.fail "below minimum") counts;
  Alcotest.(check bool) "ordering respected" true
    (counts.(0) >= counts.(1) && counts.(1) >= counts.(2));
  (* degenerate: exact minimum *)
  let tight = Stats.apportion [| 0.9; 0.1 |] ~total:2 ~min_each:1 in
  Alcotest.(check (list int)) "tight fit" [ 1; 1 ] (Array.to_list tight);
  Alcotest.check_raises "total too small"
    (Invalid_argument "Stats.apportion: total too small") (fun () ->
      ignore (Stats.apportion [| 1.0 |] ~total:0 ~min_each:1))

let test_cumulative_share () =
  let curve = Stats.cumulative_share [| 70; 20; 10 |] in
  Alcotest.(check int) "three points" 3 (Array.length curve);
  let pv, pt = curve.(0) in
  Alcotest.(check bool) "first point" true
    (Float.abs (pv -. 33.33) < 0.5 && Float.abs (pt -. 70.0) < 0.01);
  let pv, pt = curve.(2) in
  Alcotest.(check bool) "last point reaches 100/100" true
    (Float.abs (pv -. 100.0) < 1e-9 && Float.abs (pt -. 100.0) < 1e-9);
  Alcotest.(check (array (pair (float 0.1) (float 0.1)))) "empty" [||]
    (Stats.cumulative_share [||])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "interpolated" 1.2 (Stats.percentile xs 5.0);
  Alcotest.check_raises "empty input"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [||] 50.0))

(* --- Qsort -------------------------------------------------------------- *)

let test_qsort_basic () =
  let a = [| 5; 3; 9; 1; 4; 9; 0 |] in
  Qsort.sort ~cmp:compare a;
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 4; 5; 9; 9 ] (Array.to_list a);
  Alcotest.(check bool) "is_sorted" true (Qsort.is_sorted ~cmp:compare a);
  let empty = [||] in
  Qsort.sort ~cmp:compare empty;
  let one = [| 42 |] in
  Qsort.sort ~cmp:compare one;
  Alcotest.(check (list int)) "singleton" [ 42 ] (Array.to_list one)

let test_insertion_sort_segment () =
  let a = [| 9; 5; 4; 3; 8; 0 |] in
  Qsort.insertion_sort ~lo:1 ~hi:4 ~cmp:compare a;
  Alcotest.(check (list int)) "only the segment sorted" [ 9; 3; 4; 5; 8; 0 ]
    (Array.to_list a)

let qsort_matches_stdlib =
  QCheck.Test.make ~count:200 ~name:"Qsort.sort ≡ List.sort"
    QCheck.(pair (list small_int) (int_range 1 30))
    (fun (xs, cutoff) ->
      let a = Array.of_list xs in
      Qsort.sort ~cutoff ~cmp:compare a;
      Array.to_list a = List.sort compare xs)

let test_qsort_counters () =
  (* O(n log n) comparisons, not O(n^2), on random input. *)
  let rng = Rng.create ~seed:11 () in
  let a = Array.init 10_000 (fun _ -> Rng.int rng 1_000_000) in
  Counters.reset ();
  let (), c = Counters.with_counters (fun () -> Qsort.sort ~cmp:compare a) in
  let n = 10_000.0 in
  let bound = 4.0 *. n *. (log n /. log 2.0) in
  if float_of_int c.Counters.comparisons > bound then
    Alcotest.failf "too many comparisons: %d" c.Counters.comparisons

(* --- Counters ------------------------------------------------------------ *)

let test_counters () =
  Counters.reset ();
  Counters.bump_comparisons ~n:3 ();
  Counters.bump_hash_calls ();
  let s = Counters.snapshot () in
  Alcotest.(check int) "comparisons" 3 s.Counters.comparisons;
  Alcotest.(check int) "hash calls" 1 s.Counters.hash_calls;
  (* diff *)
  Counters.bump_comparisons ();
  let s2 = Counters.snapshot () in
  Alcotest.(check int) "diff" 1 (Counters.diff s2 s).Counters.comparisons;
  (* disabled: no counting *)
  Counters.enabled := false;
  Counters.bump_comparisons ~n:100 ();
  let s3 = Counters.snapshot () in
  Counters.enabled := true;
  Alcotest.(check int) "disabled bumps ignored" s2.Counters.comparisons
    s3.Counters.comparisons;
  (* counting_cmp both counts and compares *)
  Counters.reset ();
  Alcotest.(check bool) "cmp result" true (Counters.counting_cmp compare 1 2 < 0);
  Alcotest.(check int) "one comparison" 1 (Counters.snapshot ()).Counters.comparisons

let test_with_counters_scoped () =
  Counters.reset ();
  Counters.bump_data_moves ~n:5 ();
  let r, c =
    Counters.with_counters (fun () ->
        Counters.bump_data_moves ~n:2 ();
        "result")
  in
  Alcotest.(check string) "result passthrough" "result" r;
  Alcotest.(check int) "only scoped moves" 2 c.Counters.data_moves

(* --- Domain_pool --------------------------------------------------------- *)

let test_pool_map_equivalence () =
  let input = Array.init 5_000 (fun i -> (i * 37) mod 1009) in
  let f x = (x * x) + 1 in
  let expect = Array.map f input in
  List.iter
    (fun size ->
      let pool = Domain_pool.create ~size () in
      let got = Domain_pool.parallel_map pool f input in
      Domain_pool.stop pool;
      Alcotest.(check bool)
        (Printf.sprintf "size %d matches sequential" size)
        true (got = expect))
    [ 1; 2; 8 ]

let test_pool_exception_propagation () =
  let pool = Domain_pool.create ~size:2 () in
  let input = Array.init 100 Fun.id in
  Alcotest.check_raises "task failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Domain_pool.parallel_map pool
           (fun x -> if x = 63 then failwith "boom" else x)
           input));
  (* the pool is still usable after a failed map *)
  let ok = Domain_pool.parallel_map pool succ input in
  Alcotest.(check bool) "pool survives failure" true
    (ok = Array.map succ input);
  Domain_pool.stop pool

let test_pool_nested_fallback () =
  let pool = Domain_pool.create ~size:2 () in
  Alcotest.(check bool) "caller is not a worker" false (Domain_pool.in_worker ());
  let fut =
    Domain_pool.submit pool (fun () ->
        let inside = Domain_pool.in_worker () in
        (* nested parallel_map degrades to sequential instead of
           deadlocking against the workers we already occupy *)
        let nested =
          Domain_pool.parallel_map pool succ (Array.init 64 Fun.id)
        in
        (inside, nested))
  in
  let inside, nested = Domain_pool.await fut in
  Domain_pool.stop pool;
  Alcotest.(check bool) "worker flag set" true inside;
  Alcotest.(check bool) "nested result correct" true
    (nested = Array.init 64 succ)

let test_pool_chunks () =
  let check_cover n pieces =
    let ranges = Domain_pool.chunks ~n ~pieces in
    let covered = ref 0 in
    Array.iteri
      (fun i (lo, hi) ->
        if hi <= lo then Alcotest.failf "empty chunk %d" i;
        if i > 0 then begin
          let _, prev_hi = ranges.(i - 1) in
          Alcotest.(check int) "contiguous" prev_hi lo
        end;
        covered := !covered + (hi - lo))
      ranges;
    Alcotest.(check int) (Printf.sprintf "n=%d pieces=%d covers" n pieces) n
      !covered
  in
  check_cover 100 7;
  check_cover 7 100;
  check_cover 1 1;
  Alcotest.(check int) "n=0 is empty" 0
    (Array.length (Domain_pool.chunks ~n:0 ~pieces:4))

(* --- Lru ----------------------------------------------------------------- *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  (* "a" is now most recent, so adding "c" evicts "b" *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "length" 2 (Lru.length c);
  (* overwrite does not grow the cache *)
  Lru.add c "c" 30;
  Alcotest.(check (option int)) "overwrite" (Some 30) (Lru.find c "c");
  Alcotest.(check int) "length stable" 2 (Lru.length c);
  (* mem does not touch recency: "a" stays LRU and is evicted next *)
  Alcotest.(check (option int)) "refresh c" (Some 30) (Lru.find c "c");
  Alcotest.(check bool) "mem a" true (Lru.mem c "a");
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "a evicted despite mem" None (Lru.find c "a");
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity <= 0") (fun () ->
      ignore (Lru.create ~capacity:0 : (string, int) Lru.t))

(* --- Counters across domains --------------------------------------------- *)

let test_counters_cross_domain_merge () =
  Counters.reset ();
  Counters.bump_comparisons ~n:5 ();
  let domains =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            Counters.bump_comparisons ~n:100 ();
            Counters.bump_data_moves ~n:7 ()))
  in
  List.iter Domain.join domains;
  let s = Counters.snapshot () in
  Alcotest.(check int) "comparisons summed across domains" 305
    s.Counters.comparisons;
  Alcotest.(check int) "data moves summed across domains" 21
    s.Counters.data_moves;
  (* local_snapshot sees only this domain's cell *)
  Alcotest.(check int) "local snapshot is per-domain" 5
    (Counters.local_snapshot ()).Counters.comparisons;
  (* absorb folds a snapshot into the calling domain *)
  Counters.absorb { Counters.zero with comparisons = 10 };
  Alcotest.(check int) "absorb adds" 315
    (Counters.snapshot ()).Counters.comparisons

(* --- Qsort.sort_parallel -------------------------------------------------- *)

let test_sort_parallel_equivalence () =
  let rng = Rng.create ~seed:12 () in
  let input = Array.init 10_000 (fun _ -> Rng.int rng 500) in
  let expect = Array.copy input in
  Qsort.sort ~cmp:compare expect;
  List.iter
    (fun size ->
      let pool = Domain_pool.create ~size () in
      let a = Array.copy input in
      Qsort.sort_parallel ~pool ~cmp:compare a;
      Domain_pool.stop pool;
      Alcotest.(check bool)
        (Printf.sprintf "size %d sorted like sequential" size)
        true (a = expect))
    [ 1; 2; 8 ];
  (* below the parallel threshold it must still sort *)
  let pool = Domain_pool.create ~size:4 () in
  let small = [| 3; 1; 2 |] in
  Qsort.sort_parallel ~pool ~cmp:compare small;
  Domain_pool.stop pool;
  Alcotest.(check (list int)) "small input" [ 1; 2; 3 ] (Array.to_list small)

(* --- Timing ---------------------------------------------------------------- *)

let test_timing () =
  let r, dt = Timing.time (fun () -> 21 * 2) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0);
  let r, dt = Timing.time_median ~repeats:5 (fun () -> "x") in
  Alcotest.(check string) "median result" "x" r;
  Alcotest.(check bool) "median non-negative" true (dt >= 0.0);
  Alcotest.check_raises "repeats 0"
    (Invalid_argument "Timing.time_median: repeats < 1") (fun () ->
      ignore (Timing.time_median ~repeats:0 (fun () -> ())))

(* --- Json ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("true", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("intish_float", Json.Float 3.0);
        ("str", Json.Str "he said \"hi\"\n\ttab");
        ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.List [] ) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok doc' ->
      Alcotest.(check bool) "round trip" true (doc = doc');
      (* integral floats keep their ".0" and re-parse as Float, ints as Int *)
      (match Json.member "intish_float" doc' with
      | Some (Json.Float 3.0) -> ()
      | _ -> Alcotest.fail "integral float decayed to Int");
      (match Json.member "int" doc' with
      | Some (Json.Int (-42)) -> ()
      | _ -> Alcotest.fail "int did not survive")

let test_json_parse () =
  (match Json.parse {| {"a": [1, 2.5, "xé"], "b": null} |} with
  | Ok
      (Json.Obj
         [
           ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "x\xc3\xa9" ]);
           ("b", Json.Null);
         ]) ->
      ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Json.parse "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated list accepted");
  match Json.parse (Json.to_string (Json.Float Float.nan)) with
  | Ok Json.Null -> ()
  | _ -> Alcotest.fail "NaN must render as null"

(* Every control character must escape on render and survive a reparse:
   the capture/slow-log JSONL carries raw SQL text, which can contain
   any byte below 0x20. *)
let test_json_control_chars () =
  let raw = String.init 32 Char.chr in
  let rendered = Json.to_string (Json.Str raw) in
  (* no raw control byte may appear inside the rendered output *)
  String.iter
    (fun c ->
      if Char.code c < 32 then
        Alcotest.failf "raw control byte %d in rendered JSON" (Char.code c))
    rendered;
  (match Json.parse rendered with
  | Ok (Json.Str s) -> Alcotest.(check string) "round trip" raw s
  | Ok j -> Alcotest.failf "unexpected reparse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  (* the common three get their short escapes, the rest \u00XX *)
  let sub needle hay =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "newline short escape" true (sub "\\n" rendered);
  Alcotest.(check bool) "tab short escape" true (sub "\\t" rendered);
  Alcotest.(check bool) "NUL as \\u0000" true (sub "\\u0000" rendered);
  Alcotest.(check bool) "0x1f as \\u001f" true (sub "\\u001f" rendered)

(* --- Histogram ------------------------------------------------------------ *)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  Alcotest.(check (option (float 0.0))) "empty percentile" None
    (Histogram.percentile h 50.0);
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i /. 1000.0) (* 1ms .. 1s *)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check bool) "sum about 500.5" true
    (Float.abs (Histogram.sum h -. 500.5) < 1e-6);
  (match Histogram.max_sample h with
  | Some m -> Alcotest.(check (float 1e-9)) "exact max" 1.0 m
  | None -> Alcotest.fail "max of non-empty");
  (* bucketed percentile is within the ~26% bucket ratio of the truth *)
  List.iter
    (fun (p, truth) ->
      match Histogram.percentile h p with
      | None -> Alcotest.failf "p%.0f of non-empty" p
      | Some v ->
          if v < truth *. 0.99 || v > truth *. 1.27 then
            Alcotest.failf "p%.0f=%.4f not within bucket error of %.4f" p v
              truth)
    [ (50.0, 0.5); (90.0, 0.9); (99.0, 0.99) ];
  (* p100 is clamped to the exact max, not the bucket bound *)
  Alcotest.(check (option (float 1e-9))) "p100 exact" (Some 1.0)
    (Histogram.percentile h 100.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  let one = Histogram.create () in
  for i = 1 to 500 do
    let v = float_of_int i /. 250.0 in
    Histogram.add (if i mod 2 = 0 then a else b) v;
    Histogram.add one v
  done;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" (Histogram.count one) (Histogram.count m);
  Alcotest.(check bool) "merged buckets equal" true
    (Histogram.buckets m = Histogram.buckets one);
  Alcotest.(check (option (float 1e-9))) "merged p99"
    (Histogram.percentile one 99.0) (Histogram.percentile m 99.0);
  (* out-of-range samples land in under/overflow but stay counted *)
  let x = Histogram.create () in
  Histogram.add x 1e-9;
  Histogram.add x 1e6;
  Alcotest.(check int) "extremes counted" 2 (Histogram.count x);
  Alcotest.(check (option (float 1.0))) "overflow max exact" (Some 1e6)
    (Histogram.percentile x 100.0)

(* Merging histograms with disjoint occupied buckets must concatenate
   them, and the empty histogram must be a unit of merge both ways. *)
let test_histogram_merge_disjoint_empty () =
  let lo = Histogram.create () and hi = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add lo (float_of_int i *. 1e-5) (* 10µs .. 1ms *);
    Histogram.add hi (float_of_int i *. 0.1) (* 100ms .. 10s *)
  done;
  let m = Histogram.merge lo hi in
  Alcotest.(check int) "disjoint merged count" 200 (Histogram.count m);
  Alcotest.(check int) "disjoint buckets concatenate"
    (List.length (Histogram.buckets lo) + List.length (Histogram.buckets hi))
    (List.length (Histogram.buckets m));
  (* the low half is entirely below the high half, so the median of the
     merge sits at the seam and p100 is the high half's max *)
  (match Histogram.percentile m 25.0 with
  | Some v -> Alcotest.(check bool) "p25 from the low half" true (v <= 2e-3)
  | None -> Alcotest.fail "p25 of non-empty");
  Alcotest.(check (option (float 1e-9))) "p100 from the high half"
    (Some 10.0) (Histogram.percentile m 100.0);
  (* empty as a unit, in both argument positions *)
  let e = Histogram.create () in
  let me = Histogram.merge m e and em = Histogram.merge e m in
  Alcotest.(check bool) "m + empty = m" true
    (Histogram.buckets me = Histogram.buckets m
    && Histogram.count me = Histogram.count m);
  Alcotest.(check bool) "empty + m = m" true
    (Histogram.buckets em = Histogram.buckets m);
  let ee = Histogram.merge e (Histogram.create ()) in
  Alcotest.(check int) "empty + empty count" 0 (Histogram.count ee);
  Alcotest.(check (option (float 0.0))) "empty + empty percentile" None
    (Histogram.percentile ee 50.0)

(* Regression: the empty histogram used to carry [max_s = neg_infinity],
   so any consumer that rendered the raw maximum of a never-hit
   histogram emitted a non-finite float.  The field now starts at 0 and
   emptiness is signalled by the count alone: the [None] guards must
   hold before the first sample and the exact max must take over right
   after it. *)
let test_histogram_empty_max () =
  let h = Histogram.create () in
  Alcotest.(check (option (float 0.0))) "empty max_sample" None
    (Histogram.max_sample h);
  Alcotest.(check (option (float 0.0))) "empty p100" None
    (Histogram.percentile h 100.0);
  (* merging empties must not manufacture a sample or a max *)
  let m = Histogram.merge h (Histogram.create ()) in
  Alcotest.(check (option (float 0.0))) "merged-empty max_sample" None
    (Histogram.max_sample m);
  (* the first real sample becomes the exact max, however small *)
  Histogram.add h 1e-9;
  Alcotest.(check (option (float 1e-18))) "first sample is max" (Some 1e-9)
    (Histogram.max_sample h)

(* The Json non-finite policy the histogram fix leans on: NaN and the
   infinities render as null — valid JSON — and round-trip to [Null],
   bare or nested in the shapes STATS serves. *)
let test_json_non_finite_policy () =
  List.iter
    (fun v ->
      Alcotest.(check string) "renders as null" "null"
        (Json.to_string (Json.Float v));
      match Json.parse (Json.to_string (Json.Float v)) with
      | Ok Json.Null -> ()
      | Ok j -> Alcotest.failf "unexpected reparse: %s" (Json.to_string j)
      | Error e -> Alcotest.failf "invalid JSON emitted: %s" e)
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  let doc =
    Json.Obj
      [
        ("max_ms", Json.Float Float.neg_infinity);
        ("p99_ms", Json.List [ Json.Float Float.nan; Json.Float 2.5 ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok
      (Json.Obj
        [ ("max_ms", Json.Null); ("p99_ms", Json.List [ Json.Null; Json.Float 2.5 ]) ])
    -> ()
  | Ok j -> Alcotest.failf "unexpected reparse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "invalid JSON emitted: %s" e

(* Histogram is not synchronized by contract — its concurrent users
   (Metrics) serialize under their own mutex.  Hammer it the same way:
   many domains adding and reading under one mutex must never lose a
   sample. *)
let test_histogram_mutex_hammer () =
  let h = Histogram.create () in
  let m = Mutex.create () in
  let per_domain = 20_000 and n_domains = 4 in
  let worker d () =
    for i = 1 to per_domain do
      Mutex.lock m;
      Histogram.add h (float_of_int ((d * per_domain) + i) /. 1000.0);
      if i mod 1000 = 0 then ignore (Histogram.percentile h 99.0);
      Mutex.unlock m
    done
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "every add counted" (per_domain * n_domains)
    (Histogram.count h);
  match Histogram.percentile h 50.0 with
  | None -> Alcotest.fail "median of a non-empty histogram"
  | Some p ->
      Alcotest.(check bool) "median within inserted range" true
        (p >= 0.001 && p <= float_of_int (per_domain * n_domains) /. 1000.0)

(* --- Trace ----------------------------------------------------------------- *)

let test_trace_nesting () =
  Counters.reset ();
  let tr = Trace.create () in
  Alcotest.(check bool) "inactive before run" false (Trace.active ());
  Trace.offer_wait ~name:"queue.wait" 0.005;
  let result =
    Trace.run tr ~name:"query" (fun () ->
        Alcotest.(check bool) "active inside run" true (Trace.active ());
        (* a nested run suspends this trace, collects into its own, and
           restores the outer collector afterwards *)
        let inner = Trace.create () in
        Trace.run inner ~name:"inner-root" (fun () ->
            Trace.with_span "inner-child" (fun () ->
                Counters.bump_hash_calls ~n:2 ()));
        (match Trace.root inner with
        | Some r ->
            Alcotest.(check string) "nested root" "inner-root" r.Trace.sp_name;
            Alcotest.(check (list string)) "nested child" [ "inner-child" ]
              (List.map (fun c -> c.Trace.sp_name) r.Trace.sp_children)
        | None -> Alcotest.fail "nested run collected nothing");
        Alcotest.(check bool) "outer restored after nested run" true
          (Trace.active ());
        Trace.with_span "select" (fun () ->
            Trace.add_attr "relation" "Employee";
            Counters.bump_comparisons ~n:10 ();
            Trace.with_span "inner" (fun () ->
                Counters.bump_comparisons ~n:3 ()));
        Trace.with_span "project" (fun () -> Counters.bump_data_moves ~n:7 ());
        "done")
  in
  Alcotest.(check string) "result passthrough" "done" result;
  Alcotest.(check bool) "inactive after run" false (Trace.active ());
  match Trace.root tr with
  | None -> Alcotest.fail "no root collected"
  | Some root ->
      Alcotest.(check string) "root name" "query" root.Trace.sp_name;
      Alcotest.(check (list string)) "children in execution order"
        [ "queue.wait"; "select"; "project" ]
        (List.map (fun c -> c.Trace.sp_name) root.Trace.sp_children);
      let sel = List.nth root.Trace.sp_children 1 in
      Alcotest.(check (option string)) "attr recorded" (Some "Employee")
        (Trace.attr sel "relation");
      Alcotest.(check (list string)) "grandchild"
        [ "inner" ]
        (List.map (fun c -> c.Trace.sp_name) sel.Trace.sp_children);
      (* the stashed queue wait became a closed child with its elapsed *)
      let qw = List.hd root.Trace.sp_children in
      Alcotest.(check (float 1e-9)) "queue wait elapsed" 0.005
        qw.Trace.sp_elapsed;
      (* inclusive vs exclusive counters: select saw 13, owns 10 *)
      Alcotest.(check int) "select inclusive" 13
        sel.Trace.sp_counters.Counters.comparisons;
      Alcotest.(check int) "select exclusive" 10
        (Trace.exclusive_counters sel).Counters.comparisons;
      (* tiling identity: exclusive counters over the tree sum to the
         root's inclusive delta *)
      let summed =
        Trace.fold
          (fun acc ~depth:_ sp -> Counters.add acc (Trace.exclusive_counters sp))
          Counters.zero ~depth:0 root
      in
      Alcotest.(check bool) "tiling identity" true
        (summed = root.Trace.sp_counters);
      Alcotest.(check int) "depths via spans" 3
        (List.length (List.filter (fun (d, _) -> d = 1) (Trace.spans root)))

let test_trace_disabled_cheap () =
  (* The disabled path must not allocate: one DLS read and a branch. *)
  Alcotest.(check bool) "no trace installed" false (Trace.active ());
  let work () = 1 + 1 in
  (* warm up so any one-time DLS initialization is done *)
  ignore (Trace.with_span "warm" work);
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Trace.with_span "bench" work)
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 64.0 then
    Alcotest.failf "disabled with_span allocated %.0f minor words / 10k calls"
      delta;
  (* add_attr / record / offer_wait-less run state are also no-ops *)
  Trace.add_attr "k" "v";
  Trace.record "orphan" ~elapsed:1.0;
  Alcotest.(check bool) "still inactive" false (Trace.active ())

(* --- Counters diff/absorb round trip -------------------------------------- *)

let test_counters_diff_absorb_round_trip () =
  Counters.reset ();
  Counters.bump_comparisons ~n:3 ();
  let before = Counters.snapshot () in
  (* work lands on other domains, as under a Domain_pool fan-out *)
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Counters.bump_comparisons ~n:25 ();
            Counters.bump_ptr_derefs ~n:4 ()))
  in
  List.iter Domain.join domains;
  let delta = Counters.diff (Counters.snapshot ()) before in
  Alcotest.(check int) "delta comparisons" 100 delta.Counters.comparisons;
  Alcotest.(check int) "delta derefs" 16 delta.Counters.ptr_derefs;
  (* absorbing the delta into this domain doubles the merged view:
     diff measured it, absorb re-applies it *)
  Counters.absorb delta;
  let doubled = Counters.diff (Counters.snapshot ()) before in
  Alcotest.(check bool) "absorb re-applies the diff" true
    (doubled = Counters.add delta delta);
  (* a diff of identical snapshots is zero *)
  let s = Counters.snapshot () in
  Alcotest.(check bool) "self diff is zero" true
    (Counters.diff s s = Counters.zero)

(* --- Timeseries ------------------------------------------------------------ *)

(* All clock reads are injected: the ring's behavior is a pure function
   of the [now] sequence, so these tests are deterministic. *)
let test_timeseries_window () =
  let t = Timeseries.create ~buckets:10 ~width:1.0 () in
  Alcotest.(check int) "capacity" 10 (Timeseries.capacity t);
  Alcotest.(check (float 1e-9)) "span" 10.0 (Timeseries.span t);
  (* one event per second for 5 s starting at t=100 *)
  for i = 0 to 4 do
    Timeseries.add ~now:(100.0 +. float_of_int i) t 2.0
  done;
  let now = 104.5 in
  Alcotest.(check (float 1e-9)) "full window sum" 10.0
    (Timeseries.sum ~now t ~window:10.0);
  Alcotest.(check (float 1e-9)) "3s window sum" 6.0
    (Timeseries.sum ~now t ~window:3.0);
  Alcotest.(check (float 1e-9)) "3s rate" 2.0
    (Timeseries.rate ~now t ~window:3.0);
  let pts = Timeseries.points ~now t ~window:10.0 in
  Alcotest.(check int) "five live buckets" 5 (List.length pts);
  (match pts with
  | (t0, v0) :: _ ->
      Alcotest.(check (float 1e-9)) "oldest bucket start" 100.0 t0;
      Alcotest.(check (float 1e-9)) "oldest bucket sum" 2.0 v0
  | [] -> Alcotest.fail "no points")

let test_timeseries_staleness () =
  let t = Timeseries.create ~buckets:10 ~width:1.0 () in
  Timeseries.add ~now:100.0 t 5.0;
  (* same slot, one full revolution later: the stale sum must not leak
     into the fresh bucket, nor into window sums *)
  Alcotest.(check (float 1e-9)) "visible while fresh" 5.0
    (Timeseries.sum ~now:100.5 t ~window:10.0);
  Alcotest.(check (float 1e-9)) "gone after wraparound" 0.0
    (Timeseries.sum ~now:110.5 t ~window:10.0);
  Timeseries.add ~now:110.0 t 1.0;
  Alcotest.(check (float 1e-9)) "fresh write resets the slot" 1.0
    (Timeseries.sum ~now:110.5 t ~window:10.0)

let test_timeseries_hist () =
  let h = Timeseries.create_hist ~buckets:10 ~width:1.0 () in
  (* 1 ms samples at t=100..102, a 1 s outlier at t=103 *)
  for i = 0 to 2 do
    Timeseries.observe ~now:(100.0 +. float_of_int i) h 0.001
  done;
  Timeseries.observe ~now:103.0 h 1.0;
  let all = Timeseries.merged ~now:103.5 h ~window:10.0 in
  Alcotest.(check int) "all samples merged" 4 (Histogram.count all);
  Alcotest.(check (option (float 1e-9))) "windowed max" (Some 1.0)
    (Histogram.percentile all 100.0);
  (* a 1 s window sees only the outlier *)
  let recent = Timeseries.merged ~now:103.5 h ~window:1.0 in
  Alcotest.(check int) "1s window count" 1 (Histogram.count recent);
  (* after a wraparound everything is stale *)
  let later = Timeseries.merged ~now:120.5 h ~window:10.0 in
  Alcotest.(check int) "stale slots excluded" 0 (Histogram.count later)

(* --- Timing.time_median contract ------------------------------------------- *)

let test_time_median_pairing () =
  (* The result must come from the median-timed run, not the last one:
     run 0 is slow, run 1 fast, run 2 in between -> run 2 is the median. *)
  let sleeps = [| 0.03; 0.001; 0.012 |] in
  let calls = ref 0 in
  let f () =
    let i = !calls in
    incr calls;
    Unix.sleepf sleeps.(i);
    i
  in
  let run, dt = Timing.time_median ~repeats:3 f in
  Alcotest.(check int) "f ran repeats times" 3 !calls;
  Alcotest.(check int) "median run's result" 2 run;
  Alcotest.(check bool) "paired time is that run's time" true
    (dt >= 0.005 && dt < 0.03)

let () =
  Alcotest.run "mmdb_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "copy and split" `Quick test_rng_copy_and_split;
          Alcotest.test_case "shuffle permutes" `Quick
            test_shuffle_is_permutation;
          Alcotest.test_case "sampling without replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        ] );
      ( "stats",
        [
          Alcotest.test_case "truncated normal bounds" `Quick
            test_truncated_normal_bounds;
          Alcotest.test_case "duplicate weights" `Quick test_duplicate_weights;
          Alcotest.test_case "apportion" `Quick test_apportion;
          Alcotest.test_case "cumulative share" `Quick test_cumulative_share;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
      ( "qsort",
        [
          Alcotest.test_case "basics" `Quick test_qsort_basic;
          Alcotest.test_case "insertion sort segment" `Quick
            test_insertion_sort_segment;
          QCheck_alcotest.to_alcotest qsort_matches_stdlib;
          Alcotest.test_case "comparison counts" `Quick test_qsort_counters;
        ] );
      ( "counters",
        [
          Alcotest.test_case "bump/snapshot/diff/disable" `Quick test_counters;
          Alcotest.test_case "with_counters scoping" `Quick
            test_with_counters_scoped;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "parallel_map equivalence" `Quick
            test_pool_map_equivalence;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "nested fallback" `Quick test_pool_nested_fallback;
          Alcotest.test_case "chunks cover the range" `Quick test_pool_chunks;
        ] );
      ("lru", [ Alcotest.test_case "basics and eviction" `Quick test_lru_basic ]);
      ( "counters_domains",
        [
          Alcotest.test_case "cross-domain merge" `Quick
            test_counters_cross_domain_merge;
        ] );
      ( "sort_parallel",
        [
          Alcotest.test_case "equivalence" `Quick test_sort_parallel_equivalence;
        ] );
      ( "timing",
        [
          Alcotest.test_case "time and median" `Quick test_timing;
          Alcotest.test_case "median pairs result with its run" `Quick
            test_time_median_pairing;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "window sums and rates" `Quick
            test_timeseries_window;
          Alcotest.test_case "stale slots evicted" `Quick
            test_timeseries_staleness;
          Alcotest.test_case "histogram ring windows" `Quick
            test_timeseries_hist;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "parse and reject" `Quick test_json_parse;
          Alcotest.test_case "control-character escapes" `Quick
            test_json_control_chars;
          Alcotest.test_case "non-finite policy" `Quick
            test_json_non_finite_policy;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge disjoint and empty" `Quick
            test_histogram_merge_disjoint_empty;
          Alcotest.test_case "empty max regression" `Quick
            test_histogram_empty_max;
          Alcotest.test_case "concurrent hammer (mutexed)" `Quick
            test_histogram_mutex_hammer;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and counters" `Quick
            test_trace_nesting;
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_trace_disabled_cheap;
        ] );
      ( "counters_round_trip",
        [
          Alcotest.test_case "diff/absorb across domains" `Quick
            test_counters_diff_absorb_round_trip;
        ] );
    ]
